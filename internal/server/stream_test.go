package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dragprof/internal/store"
)

// streamWorkloads is the nine-benchmark sweep the CI jobs use.
var streamWorkloads = []string{"javac", "db", "jack", "raytrace", "jess", "mc", "euler", "juru", "analyzer"}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// parseSSE splits a raw SSE stream into events, ignoring comments and
// heartbeats.
func parseSSE(t *testing.T, raw string) []sseEvent {
	t.Helper()
	var (
		out []sseEvent
		cur sseEvent
	)
	flush := func() {
		if cur.event != "" || cur.data != "" {
			out = append(out, cur)
		}
		cur = sseEvent{}
	}
	for _, line := range strings.Split(raw, "\n") {
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("malformed SSE line %q", line)
		}
	}
	flush()
	return out
}

func twoTenantServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{
		Tenants: []TenantConfig{
			{Name: "alpha", Token: "tok-alpha"},
			{Name: "beta", Token: "tok-beta"},
		},
		OpenTenantStore: func(name string) (store.RunStore, error) {
			return store.OpenSharded(filepath.Join(dir, name), 3)
		},
		Workers:           2,
		CompactDebounce:   time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	<-srv.OpenDone()
	if err := srv.ReadyErr(); err != nil {
		t.Fatal(err)
	}
	return srv, ts
}

func authedReq(t *testing.T, method, url, token string, body io.Reader) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return req
}

func pushAs(t *testing.T, ts *httptest.Server, token string, log []byte) *IngestResponse {
	t.Helper()
	req := authedReq(t, http.MethodPost, ts.URL+"/api/v1/runs", token, bytes.NewReader(log))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatalf("push reply: %v", err)
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("push = %d: %s", resp.StatusCode, ir.Error)
	}
	return &ir
}

// TestWatchStreamsConvergeToSites is the live-streaming oracle: with two
// tenants ingesting all nine workloads concurrently, each tenant's SSE
// stream must carry only its own well-formed delta events, and summing
// the streamed per-site deltas must reproduce the polled /sites totals
// exactly.
func TestWatchStreamsConvergeToSites(t *testing.T) {
	srv, ts := twoTenantServer(t, t.TempDir())

	// Open one watch per tenant before ingesting anything.
	streams := map[string]*bytes.Buffer{"tok-alpha": {}, "tok-beta": {}}
	var streamWG sync.WaitGroup
	for token, buf := range streams {
		req := authedReq(t, http.MethodGet, ts.URL+"/api/v1/watch", token, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("watch = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("watch content-type %q", ct)
		}
		streamWG.Add(1)
		go func(body io.ReadCloser, buf *bytes.Buffer) {
			defer streamWG.Done()
			defer body.Close()
			sc := bufio.NewScanner(body)
			for sc.Scan() {
				buf.WriteString(sc.Text())
				buf.WriteByte('\n')
			}
		}(resp.Body, buf)
	}

	// All nine workloads, both tenants, concurrently.
	var pushWG sync.WaitGroup
	for i, name := range streamWorkloads {
		for _, token := range []string{"tok-alpha", "tok-beta"} {
			i, name, token := i, name, token
			pushWG.Add(1)
			go func() {
				defer pushWG.Done()
				log := encodeLog(t, syntheticProfile(name, 30+i*5, uint64(i+1)))
				pushAs(t, ts, token, log)
			}()
		}
	}
	pushWG.Wait()

	// A /sites poll compacts and gives the reference totals.
	req := authedReq(t, http.MethodGet, ts.URL+"/api/v1/sites", "tok-alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sites []*store.SiteSummary
	if err := json.NewDecoder(resp.Body).Decode(&sites); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sites) == 0 {
		t.Fatal("no site summaries")
	}

	// Drain: final events flush, streams close, readers finish.
	srv.BeginDrain()
	streamWG.Wait()

	evs := parseSSE(t, streams["tok-alpha"].String())
	if len(evs) == 0 {
		t.Fatal("alpha stream carried no events")
	}
	type key struct{ workload, site string }
	streamed := map[key]*SiteDeltaSSE{}
	runEvents := 0
	for _, ev := range evs {
		switch ev.event {
		case "run-ingested":
			runEvents++
			var re RunEvent
			if err := json.Unmarshal([]byte(ev.data), &re); err != nil {
				t.Fatalf("malformed run-ingested payload %q: %v", ev.data, err)
			}
			if re.Tenant != "alpha" {
				t.Fatalf("alpha stream leaked tenant %q event", re.Tenant)
			}
			if ev.id == "" || re.Run == "" || re.Workload == "" || len(re.Sites) == 0 {
				t.Fatalf("incomplete run-ingested event: id=%q %+v", ev.id, re)
			}
			for _, sd := range re.Sites {
				k := key{re.Workload, sd.Site}
				agg := streamed[k]
				if agg == nil {
					agg = &SiteDeltaSSE{Site: sd.Site}
					streamed[k] = agg
				}
				agg.Drag += sd.Drag
				agg.Bytes += sd.Bytes
				agg.Objects += sd.Objects
				agg.NeverUsed += sd.NeverUsed
			}
		case "compacted":
			var ce CompactEvent
			if err := json.Unmarshal([]byte(ev.data), &ce); err != nil {
				t.Fatalf("malformed compacted payload %q: %v", ev.data, err)
			}
			if ce.Tenant != "alpha" {
				t.Fatalf("alpha stream leaked tenant %q compaction", ce.Tenant)
			}
		default:
			t.Fatalf("unexpected event type %q", ev.event)
		}
	}
	if runEvents != len(streamWorkloads) {
		t.Fatalf("alpha stream carried %d run-ingested events, want %d", runEvents, len(streamWorkloads))
	}

	// Convergence: the summed streamed deltas equal the polled totals for
	// every additive field, site by site.
	if len(streamed) != len(sites) {
		t.Fatalf("streamed %d distinct sites, /sites has %d", len(streamed), len(sites))
	}
	for _, want := range sites {
		got := streamed[key{want.Name, want.Desc}]
		if got == nil {
			t.Fatalf("site %s/%s missing from stream", want.Name, want.Desc)
		}
		if got.Drag != want.Drag || got.Bytes != want.Bytes ||
			got.Objects != want.Count || got.NeverUsed != want.NeverUsed {
			t.Fatalf("site %s/%s streamed totals diverge: drag %d/%d bytes %d/%d objects %d/%d neverUsed %d/%d",
				want.Name, want.Desc, got.Drag, want.Drag, got.Bytes, want.Bytes,
				got.Objects, want.Count, got.NeverUsed, want.NeverUsed)
		}
	}

	// Beta's stream saw only beta.
	for _, ev := range parseSSE(t, streams["tok-beta"].String()) {
		if ev.event == "run-ingested" {
			var re RunEvent
			if err := json.Unmarshal([]byte(ev.data), &re); err != nil {
				t.Fatal(err)
			}
			if re.Tenant != "beta" {
				t.Fatalf("beta stream leaked tenant %q event", re.Tenant)
			}
		}
	}
}

// TestWatchResume checks Last-Event-ID replay from the ring over HTTP.
func TestWatchResume(t *testing.T) {
	_, ts := twoTenantServer(t, t.TempDir())
	for i := 0; i < 3; i++ {
		pushAs(t, ts, "tok-alpha", encodeLog(t, syntheticProfile("javac", 25, uint64(i+1))))
	}
	// Resume from event 1: events 2.. replay immediately.
	req := authedReq(t, http.MethodGet, ts.URL+"/api/v1/watch", "tok-alpha", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var raw strings.Builder
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		raw.WriteString(sc.Text())
		raw.WriteByte('\n')
		if strings.Contains(raw.String(), "event: run-ingested") && strings.HasSuffix(raw.String(), "\n\n") {
			break
		}
	}
	evs := parseSSE(t, raw.String())
	if len(evs) == 0 {
		t.Fatal("no replayed events after resume")
	}
	if evs[0].id != "2" {
		t.Fatalf("first replayed event id %q, want 2", evs[0].id)
	}
}

// TestWatchResetPastRing checks that a Last-Event-ID older than the ring
// yields a reset event telling the client to re-sync.
func TestWatchResetPastRing(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{
		Tenants: []TenantConfig{{Name: "alpha", Token: "tok-alpha"}},
		OpenTenantStore: func(name string) (store.RunStore, error) {
			return store.Open(filepath.Join(dir, name))
		},
		Workers:         2,
		CompactDebounce: time.Millisecond,
		EventRing:       2,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	<-srv.OpenDone()
	for i := 0; i < 5; i++ {
		pushAs(t, ts, "tok-alpha", encodeLog(t, syntheticProfile("javac", 25, uint64(i+1))))
	}
	req := authedReq(t, http.MethodGet, ts.URL+"/api/v1/watch", "tok-alpha", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var raw strings.Builder
	for sc.Scan() {
		raw.WriteString(sc.Text())
		raw.WriteByte('\n')
		if strings.Contains(raw.String(), "event: reset") {
			return // got the reset
		}
		if strings.Count(raw.String(), "event: ") > 1 {
			break
		}
	}
	t.Fatalf("no reset event in stream:\n%s", raw.String())
}

// TestTenantAuthAndIsolation checks the 401 surface and that tenants
// cannot see each other's runs.
func TestTenantAuthAndIsolation(t *testing.T) {
	_, ts := twoTenantServer(t, t.TempDir())

	// No token, bad token: 401 with WWW-Authenticate on every /api route.
	for _, token := range []string{"", "tok-wrong"} {
		for _, probe := range []struct{ method, path string }{
			{http.MethodGet, "/api/v1/runs"},
			{http.MethodGet, "/api/v1/sites"},
			{http.MethodGet, "/api/v1/watch"},
			{http.MethodPost, "/api/v1/runs"},
		} {
			req := authedReq(t, probe.method, ts.URL+probe.path, token, strings.NewReader("x"))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("%s %s token=%q = %d, want 401", probe.method, probe.path, token, resp.StatusCode)
			}
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Fatal("401 without WWW-Authenticate")
			}
		}
	}
	// The probes stay open to everyone.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// Alpha's run is invisible to beta.
	ir := pushAs(t, ts, "tok-alpha", encodeLog(t, syntheticProfile("javac", 30, 1)))
	req := authedReq(t, http.MethodGet, ts.URL+"/api/v1/runs/"+ir.Run.ID, "tok-beta", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant run fetch = %d, want 404", resp.StatusCode)
	}
}

// TestTenantQuota checks per-tenant run quotas deny with 507 while other
// tenants keep ingesting.
func TestTenantQuota(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{
		Tenants: []TenantConfig{
			{Name: "small", Token: "tok-small", MaxRuns: 1},
			{Name: "big", Token: "tok-big"},
		},
		OpenTenantStore: func(name string) (store.RunStore, error) {
			return store.Open(filepath.Join(dir, name))
		},
		Workers:         2,
		CompactDebounce: time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	<-srv.OpenDone()

	pushAs(t, ts, "tok-small", encodeLog(t, syntheticProfile("javac", 30, 1)))
	req := authedReq(t, http.MethodPost, ts.URL+"/api/v1/runs", "tok-small",
		bytes.NewReader(encodeLog(t, syntheticProfile("javac", 30, 2))))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-quota push = %d, want 507", resp.StatusCode)
	}
	// The unlimited tenant is unaffected.
	pushAs(t, ts, "tok-big", encodeLog(t, syntheticProfile("javac", 30, 2)))

	// Quota denials are per-tenant counters and never 5xx-counted.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`dragserved_tenant_quota_denied_total{tenant="small"} 1`,
		`dragserved_tenant_quota_denied_total{tenant="big"} 0`,
		"dragserved_http_5xx_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestMetrics503ExcludedFrom5xx pins the alerting contract: degradation
// responses (503 while the store recovers or drains, 507 quota, 401
// auth) must never count as server errors.
func TestMetrics503ExcludedFrom5xx(t *testing.T) {
	release := make(chan struct{})
	srv := New(Options{
		OpenStore: func() (store.RunStore, error) {
			<-release
			return store.Open(t.TempDir())
		},
		Workers:         2,
		CompactDebounce: time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	// Store not ready: queries and ingests answer 503.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/api/v1/sites")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("not-ready query = %d, want 503", resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready ingest = %d, want 503", resp.StatusCode)
	}
	close(release)
	<-srv.OpenDone()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "dragserved_http_5xx_total 0") {
		t.Fatalf("503s leaked into http_5xx:\n%s", text)
	}
	if !strings.Contains(text, "dragserved_not_ready_total 4") {
		t.Fatalf("not-ready counter wrong:\n%s", text)
	}
}

// TestDiffRejectsMixedSampleRates pins the 422 surface for diffing a
// sampled run against an exact one.
func TestDiffRejectsMixedSampleRates(t *testing.T) {
	_, ts := twoTenantServer(t, t.TempDir())
	exact := syntheticProfile("javac", 40, 1)
	sampled := syntheticProfile("javac", 40, 2)
	sampled.SampleRate = 0.5
	a := pushAs(t, ts, "tok-alpha", encodeLog(t, exact))
	b := pushAs(t, ts, "tok-alpha", encodeLog(t, sampled))
	url := fmt.Sprintf("%s/api/v1/diff?base=%s&head=%s", ts.URL, a.Run.ID, b.Run.ID)
	req := authedReq(t, http.MethodGet, url, "tok-alpha", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mixed-rate diff = %d, want 422 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "sample-rate mismatch") {
		t.Fatalf("422 body lacks typed error text: %s", body)
	}
}
