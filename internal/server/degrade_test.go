package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dragprof/internal/store"
)

// Graceful degradation: readiness vs liveness, load shedding, drain, and
// the end-to-end push-against-a-flapping-server contract.

// TestReadyzDuringRecovery: with a background OpenStore, /healthz is 200
// immediately, /readyz and the data endpoints are 503 + Retry-After
// until the open returns, then flip.
func TestReadyzDuringRecovery(t *testing.T) {
	release := make(chan struct{})
	dir := t.TempDir()
	srv := New(Options{
		OpenStore: func() (store.RunStore, error) {
			<-release
			return store.Open(dir)
		},
		Workers: 2, CompactDebounce: time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while recovering = %d, want 200 (liveness)", code)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while recovering = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("readyz 503 without Retry-After")
	}
	// Data plane: queries and ingest are 503 + Retry-After, never a
	// panic on the nil store.
	qresp, err := http.Get(ts.URL + "/api/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusServiceUnavailable || qresp.Header.Get("Retry-After") == "" {
		t.Fatalf("query while recovering = %d (Retry-After %q), want 503 with Retry-After",
			qresp.StatusCode, qresp.Header.Get("Retry-After"))
	}
	code, ir := postLog(t, ts, []byte("log"))
	if code != http.StatusServiceUnavailable || !strings.Contains(ir.Error, "recovering") {
		t.Fatalf("ingest while recovering = %d %q, want 503 recovering", code, ir.Error)
	}
	if srv.Ready() {
		t.Fatal("Ready() true before the store opened")
	}

	close(release)
	<-srv.OpenDone()
	if err := srv.ReadyErr(); err != nil {
		t.Fatal(err)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("readyz after open = %d %q, want 200 ready", code, body)
	}
	if !srv.Ready() {
		t.Fatal("Ready() false after the store opened")
	}
	// And the data plane works.
	if code, _ := postLog(t, ts, encodeLog(t, syntheticProfile("w", 6000, 1))); code != http.StatusCreated {
		t.Fatalf("ingest after open = %d, want 201", code)
	}
}

// TestReadyzOpenFailure: a store that cannot open pins the server
// not-ready with the failure on /readyz, while /healthz stays 200.
func TestReadyzOpenFailure(t *testing.T) {
	srv := New(Options{
		OpenStore: func() (store.RunStore, error) {
			return nil, errors.New("disk exploded")
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	<-srv.OpenDone()
	if err := srv.ReadyErr(); err == nil || !strings.Contains(err.Error(), "disk exploded") {
		t.Fatalf("ReadyErr = %v", err)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after open failure = %d, want 200", code)
	}
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "disk exploded") {
		t.Fatalf("readyz after open failure = %d %q", code, body)
	}
	if srv.Ready() {
		t.Fatal("Ready() true despite open failure")
	}
}

// blockingReader hands the request body out one byte at a time until
// released, pinning its ingest in-flight.
type blockingReader struct {
	release <-chan struct{}
	data    io.Reader
	first   sync.Once
}

func (b *blockingReader) Read(p []byte) (int, error) {
	b.first.Do(func() {})
	select {
	case <-b.release:
		return b.data.Read(p)
	case <-time.After(10 * time.Second):
		return 0, errors.New("blockingReader: never released")
	}
}

// TestIngestShedsWith429 saturates the in-flight ingest cap with stalled
// uploads: every request past the cap is shed with 429 + Retry-After
// (never a 5xx), and once the stall clears, acknowledged uploads are all
// stored — nothing is lost to the shedding.
func TestIngestShedsWith429(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: st, Workers: 2, MaxInFlightIngest: 2, CompactDebounce: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	logBytes := encodeLog(t, syntheticProfile("w", 6000, 1))
	release := make(chan struct{})
	var wg sync.WaitGroup
	statuses := make([]int, 2)
	// Two uploads occupy both in-flight slots, stalled on their bodies.
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/runs",
				&blockingReader{release: release, data: bytes.NewReader(logBytes)})
			req.Header.Set("Content-Type", "application/octet-stream")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("stalled upload %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			statuses[i] = resp.StatusCode
		}()
	}
	// Wait until both slots are actually held.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.tenants[0].inflight) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight slots never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// Everything above the cap is shed: 429, Retry-After, no 5xx.
	otherLog := encodeLog(t, syntheticProfile("w", 3000, 2))
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/octet-stream", bytes.NewReader(otherLog))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated ingest %d = %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}

	close(release)
	wg.Wait()
	// The stalled uploads were acknowledged (first 201, second 200
	// duplicate in either order) — and the acknowledged run is stored.
	for i, code := range statuses {
		if code != http.StatusCreated && code != http.StatusOK {
			t.Fatalf("stalled upload %d finished with %d", i, code)
		}
	}
	if n := srv.Store().NumRuns(); n != 1 {
		t.Fatalf("store holds %d runs, want 1 (acked upload lost?)", n)
	}
	// A retry of the shed upload now goes through.
	if code, _ := postLog(t, ts, otherLog); code != http.StatusCreated {
		t.Fatalf("retry after shed = %d, want 201", code)
	}
}

// TestDrainRejectsNewIngest: BeginDrain waits out in-flight uploads,
// flips /readyz to 503, and new ingests are turned away with 503 +
// Retry-After while queries still answer.
func TestDrainRejectsNewIngest(t *testing.T) {
	srv, ts := newTestServer(t)
	logBytes := encodeLog(t, syntheticProfile("w", 6000, 1))
	if code, _ := postLog(t, ts, logBytes); code != http.StatusCreated {
		t.Fatal("seed ingest failed")
	}

	// An in-flight upload straddles the drain: started before, stalled,
	// released after BeginDrain is waiting.
	release := make(chan struct{})
	started := make(chan struct{})
	result := make(chan int, 1)
	go func() {
		pr, pw := io.Pipe()
		go func() {
			close(started)
			<-release
			pw.Write(encodeLog(t, syntheticProfile("w", 3000, 2)))
			pw.Close()
		}()
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/octet-stream", pr)
		if err != nil {
			result <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		result <- resp.StatusCode
	}()
	<-started
	// Give the handler a moment to register with the drain barrier.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.tenants[0].inflight) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight upload never registered")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { srv.BeginDrain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("BeginDrain returned with an upload still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("BeginDrain never finished after the upload completed")
	}
	if code := <-result; code != http.StatusCreated {
		t.Fatalf("straddling upload = %d, want 201 (drain must not abort it)", code)
	}

	// After drain: readyz 503, new ingest 503 + Retry-After, queries OK.
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz while draining = %d %q", code, body)
	}
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/octet-stream", bytes.NewReader(logBytes))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("ingest while draining = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, _ := get(t, ts.URL+"/api/v1/runs"); code != http.StatusOK {
		t.Fatalf("query while draining = %d, want 200", code)
	}
	if n := srv.Store().NumRuns(); n != 2 {
		t.Fatalf("store holds %d runs, want 2", n)
	}
}

// TestPushAgainstFlappingServer: the end-to-end overload contract — a
// server that sheds (429), recovers late (503) and flaps must still
// accept every push via Retry-After-honoring backoff, with no acked run
// lost.
func TestPushAgainstFlappingServer(t *testing.T) {
	srv, _ := newTestServer(t)

	// flaky fronts the real handler: the first two attempts of every
	// upload are turned away the way a recovering/overloaded dragserved
	// would — 503 then 429, both with Retry-After.
	var mu sync.Mutex
	attempts := make(map[string]int)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			key := r.URL.Path
			mu.Lock()
			attempts[key]++
			n := attempts[key]
			mu.Unlock()
			switch n {
			case 1:
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"store is recovering"}`)
				return
			case 2:
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"ingest at capacity, retry later"}`)
				return
			}
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	logBytes := encodeLog(t, syntheticProfile("w", 6000, 1))
	var slept atomic.Int64
	opts := PushOptions{
		Retries: 5,
		Backoff: time.Millisecond,
		sleep:   func(time.Duration) { slept.Add(1) },
	}
	resp, err := Push(context.Background(), flaky.URL, opener(logBytes), opts)
	if err != nil {
		t.Fatalf("push against flapping server: %v", err)
	}
	if resp.Run == nil {
		t.Fatalf("no run in response: %+v", resp)
	}
	if slept.Load() != 2 {
		t.Fatalf("client slept %d times, want 2 (one per rejection)", slept.Load())
	}
	if n := srv.Store().NumRuns(); n != 1 {
		t.Fatalf("store holds %d runs, want 1", n)
	}
}
