// Package server implements dragserved, the continuous drag-profiling
// service: it ingests binary drag logs over HTTP (streamed block-by-block,
// damaged uploads salvaged rather than crashed on), keeps them in a
// content-addressed store with background cross-run compaction, and
// answers report, site and regression-diff queries whose canonical output
// is byte-identical to a local draganalyze run over the same log.
//
// The service degrades instead of falling over: each tenant's store opens
// (and runs its recovery scan) in the background while /healthz already
// answers, /readyz flips true only once recovery completes and back to
// false while draining, ingest concurrency is bounded per tenant and
// sheds excess load with 429 + Retry-After, quotas deny with 507, and
// shutdown drains in-flight ingests, closes the event streams, and stops
// the compactor before the stores are left behind.
//
// Multi-tenant mode (Options.Tenants) isolates namespaces end to end:
// bearer-token auth resolves every /api/ request to a tenant with its own
// store root, its own quotas and in-flight cap, its own live event stream
// (GET /api/v1/watch, SSE), and its own metrics.
package server

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dragprof/internal/server/events"
	"dragprof/internal/store"
)

// Options configure a Server.
type Options struct {
	// Store is the backing run store for single-tenant mode. Exactly one
	// of Store, OpenStore, or Tenants+OpenTenantStore is required.
	Store store.RunStore
	// OpenStore opens the single-tenant store in the background: the
	// server starts serving /healthz immediately and reports not-ready
	// (503 + Retry-After on data endpoints, /readyz false) until it
	// returns. An open failure pins the server not-ready; ReadyErr
	// exposes it.
	OpenStore func() (store.RunStore, error)
	// Tenants switches on multi-tenant mode: bearer-token auth on every
	// /api/ route, one isolated store per tenant (opened in the
	// background via OpenTenantStore), per-tenant quotas and streams.
	Tenants []TenantConfig
	// OpenTenantStore opens one tenant's store by name; required when
	// Tenants is set.
	OpenTenantStore func(name string) (store.RunStore, error)
	// Workers bounds per-request analysis parallelism (0: GOMAXPROCS).
	Workers int
	// MaxUploadBytes rejects larger uploads with 413 (default 1 GiB).
	MaxUploadBytes int64
	// MaxInFlightIngest bounds concurrently-served ingest requests per
	// tenant; excess load is shed with 429 + Retry-After (default 64).
	MaxInFlightIngest int
	// RequestTimeout bounds query handling (default 60s). Ingest and
	// /watch are exempt: uploads are bounded by size, streams by the
	// client.
	RequestTimeout time.Duration
	// CompactDebounce delays background compaction after an ingest so
	// bursts coalesce into one merge (default 100ms).
	CompactDebounce time.Duration
	// HeartbeatInterval paces SSE keep-alive comments on /watch
	// (default 15s).
	HeartbeatInterval time.Duration
	// EventRing and EventBuffer size each tenant's broadcaster: events
	// kept for Last-Event-ID resume, and each subscriber's bounded
	// delivery buffer (defaults 256 and 64).
	EventRing   int
	EventBuffer int
	// Log receives request and compaction logging; nil discards it.
	Log *log.Logger
}

// Server is the dragserved HTTP service.
type Server struct {
	tenants      []*tenant
	byToken      map[string]*tenant
	authRequired bool

	workers   int
	maxBytes  int64
	heartbeat time.Duration
	logger    *log.Logger
	handler   http.Handler

	metrics metrics

	// readyCh closes when every background store open finishes (for
	// better or worse); per-tenant failures live on the tenants.
	readyCh chan struct{}
	// draining flips once shutdown begins; ingestWG counts in-flight
	// ingest requests so drain can wait them out.
	draining atomic.Bool
	ingestWG sync.WaitGroup

	compactKick chan struct{}
	debounce    time.Duration
	done        chan struct{}
	wg          sync.WaitGroup
	drainOnce   sync.Once
	closeOnce   sync.Once
}

// New builds the service and starts its background compactor (and the
// background store opens).
func New(opts Options) *Server {
	if opts.Store == nil && opts.OpenStore == nil && len(opts.Tenants) == 0 {
		panic("server: Options.Store, Options.OpenStore or Options.Tenants is required")
	}
	if len(opts.Tenants) > 0 && opts.OpenTenantStore == nil {
		panic("server: Options.Tenants requires Options.OpenTenantStore")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 1 << 30
	}
	if opts.MaxInFlightIngest <= 0 {
		opts.MaxInFlightIngest = 64
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 60 * time.Second
	}
	if opts.CompactDebounce <= 0 {
		opts.CompactDebounce = 100 * time.Millisecond
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 15 * time.Second
	}
	if opts.Log == nil {
		opts.Log = log.New(discard{}, "", 0)
	}
	s := &Server{
		byToken:     make(map[string]*tenant),
		workers:     opts.Workers,
		maxBytes:    opts.MaxUploadBytes,
		heartbeat:   opts.HeartbeatInterval,
		logger:      opts.Log,
		readyCh:     make(chan struct{}),
		compactKick: make(chan struct{}, 1),
		debounce:    opts.CompactDebounce,
		done:        make(chan struct{}),
	}

	newTenant := func(cfg TenantConfig) *tenant {
		capIngest := cfg.MaxInFlightIngest
		if capIngest <= 0 {
			capIngest = opts.MaxInFlightIngest
		}
		return &tenant{
			name:     cfg.Name,
			token:    cfg.Token,
			maxRuns:  cfg.MaxRuns,
			maxBytes: cfg.MaxBytes,
			inflight: make(chan struct{}, capIngest),
			events:   events.New(opts.EventRing, opts.EventBuffer),
		}
	}
	if len(opts.Tenants) > 0 {
		s.authRequired = true
		for _, cfg := range opts.Tenants {
			if cfg.Name == "" || cfg.Token == "" {
				panic("server: every tenant needs a name and a token")
			}
			tn := newTenant(cfg)
			if _, dup := s.byToken[cfg.Token]; dup {
				panic("server: duplicate tenant token")
			}
			s.tenants = append(s.tenants, tn)
			s.byToken[cfg.Token] = tn
		}
	} else {
		s.tenants = []*tenant{newTenant(TenantConfig{Name: "default", Token: "-"})}
	}

	api := http.NewServeMux()
	api.HandleFunc("GET /api/v1/runs", s.handleRuns)
	api.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	api.HandleFunc("GET /api/v1/runs/{id}/report", s.handleReport)
	api.HandleFunc("GET /api/v1/sites", s.handleSites)
	api.HandleFunc("GET /api/v1/diff", s.handleDiff)

	// The timeout middleware buffers responses, which would break pprof's
	// streaming endpoints, the SSE stream, and ingest (uploads are
	// bounded by MaxUploadBytes, not wall clock) — so those routes bypass
	// it. The probes and /metrics also bypass it (and the readiness
	// gate): they must answer while the stores are still recovering. All
	// /api/ routes sit behind the tenant auth middleware.
	timed := http.TimeoutHandler(api, opts.RequestTimeout, "request timed out\n")
	root := http.NewServeMux()
	root.Handle("POST /api/v1/runs", s.auth(http.HandlerFunc(s.handleIngest)))
	root.Handle("GET /api/v1/watch", s.auth(http.HandlerFunc(s.handleWatch)))
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	root.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	root.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	root.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	root.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	root.Handle("/", s.auth(s.readyGate(timed)))
	s.handler = s.logged(root)

	if opts.Store != nil && !s.authRequired {
		s.tenants[0].st.Store(&storeBox{rs: opts.Store})
		close(s.readyCh)
	} else {
		open := opts.OpenTenantStore
		if open == nil {
			open = func(string) (store.RunStore, error) { return opts.OpenStore() }
		}
		s.wg.Add(1)
		go s.opener(open)
	}
	s.wg.Add(1)
	go s.compactor()
	return s
}

// opener runs every tenant's store open (with its recovery scan) off the
// serving path, so the process binds its port and answers probes
// immediately. Tenants come ready one by one; readyCh closes once all
// opens have finished either way.
func (s *Server) opener(open func(name string) (store.RunStore, error)) {
	defer s.wg.Done()
	defer close(s.readyCh)
	for _, tn := range s.tenants {
		start := time.Now()
		rs, err := open(tn.name)
		if err != nil {
			tn.openErr.Store(&err)
			s.logger.Printf("tenant %s: store open failed: %v", tn.name, err)
			continue
		}
		tn.st.Store(&storeBox{rs: rs})
		s.logger.Printf("tenant %s: store ready in %v (%d runs, %d quarantined)",
			tn.name, time.Since(start).Round(time.Millisecond), rs.NumRuns(), len(rs.Quarantined()))
		if rs.Dirty() {
			s.kickCompactor()
		}
	}
}

// store returns the default tenant's store — the single-tenant accessor
// (nil while opening or after a failed open).
func (s *Server) store() store.RunStore { return s.tenants[0].store() }

// Ready reports whether the server can take traffic: every tenant's
// store finished its recovery scan and shutdown has not begun.
func (s *Server) Ready() bool {
	select {
	case <-s.readyCh:
	default:
		return false
	}
	for _, tn := range s.tenants {
		if tn.store() == nil {
			return false
		}
	}
	return !s.draining.Load()
}

// ReadyErr returns the first tenant's store-open failure, if any
// background open failed. It reports nil while opens are in progress.
func (s *Server) ReadyErr() error {
	for _, tn := range s.tenants {
		if p := tn.openErr.Load(); p != nil {
			return *p
		}
	}
	return nil
}

// OpenDone closes when every background store open has finished, either
// way; check ReadyErr afterwards.
func (s *Server) OpenDone() <-chan struct{} { return s.readyCh }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Store exposes the default tenant's backing store (read-only use:
// tests, stats). It is nil until the background open completes.
func (s *Server) Store() store.RunStore { return s.store() }

// TenantStore exposes one tenant's backing store by name (read-only
// use); nil when unknown or not yet open.
func (s *Server) TenantStore(name string) store.RunStore {
	for _, tn := range s.tenants {
		if tn.name == name {
			return tn.store()
		}
	}
	return nil
}

// BeginDrain flips the server not-ready (readyz 503, new ingests shed
// with 503 + Retry-After), waits for every in-flight ingest to finish,
// then closes every tenant's event stream — in that order, so the final
// ingests' events still reach subscribers before their streams end. Call
// it before stopping the HTTP listener: load balancers stop routing,
// uploads complete, and open /watch connections terminate instead of
// pinning the listener's graceful shutdown forever.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.ingestWG.Wait()
		for _, tn := range s.tenants {
			tn.events.Close()
		}
	})
}

// Close shuts the service down in dependency order: drain in-flight
// ingest and end event streams, stop the background goroutines
// (compactor, opener) via their WaitGroup, then run one final compaction
// so nothing dirty is left behind. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.BeginDrain()
		close(s.done)
		s.wg.Wait()
		s.compactNow()
	})
}

// readyGate rejects data-plane requests with 503 + Retry-After until the
// request's tenant store has finished recovering.
func (s *Server) readyGate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.tenantOf(r).store() == nil {
			s.metrics.notReady.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds)
			msg := "store is recovering"
			if s.ReadyErr() != nil {
				msg = "store failed to open"
			}
			writeJSON(w, http.StatusServiceUnavailable, IngestResponse{Error: msg})
			return
		}
		h.ServeHTTP(w, r)
	})
}

// kickCompactor schedules a background compaction (coalescing kicks).
func (s *Server) kickCompactor() {
	select {
	case s.compactKick <- struct{}{}:
	default:
	}
}

// compactor is the background merge loop: each kick is debounced so a
// burst of pushes compacts once, after the burst. It idles until the
// stores are ready.
func (s *Server) compactor() {
	defer s.wg.Done()
	select {
	case <-s.done:
		return
	case <-s.readyCh:
	}
	for {
		select {
		case <-s.done:
			return
		case <-s.compactKick:
		}
		timer := time.NewTimer(s.debounce)
		select {
		case <-s.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		s.compactNow()
	}
}

// compactNow merges every tenant's stale summaries and announces each
// completed merge on that tenant's event stream.
func (s *Server) compactNow() {
	for _, tn := range s.tenants {
		rs := tn.store()
		if rs == nil || !rs.Dirty() {
			continue
		}
		start := time.Now()
		if err := rs.Compact(s.workers); err != nil {
			s.metrics.compactErrors.Add(1)
			s.logger.Printf("tenant %s: compact: %v", tn.name, err)
			continue
		}
		s.metrics.compactions.Add(1)
		s.logger.Printf("tenant %s: compact: merged summaries in %v",
			tn.name, time.Since(start).Round(time.Millisecond))
		s.publishCompacted(tn, rs)
	}
}

// logged wraps the handler with request logging and a 5xx counter.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		// 503 (recovering/draining) and 507 (tenant quota) are deliberate
		// shedding, not faults; only genuine server errors page anyone.
		if rec.status >= 500 && rec.status != http.StatusServiceUnavailable &&
			rec.status != http.StatusInsufficientStorage {
			s.metrics.serverErrors.Add(1)
		}
		s.logger.Printf("%s %s -> %d", r.Method, r.URL.Path, rec.status)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the logging middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
