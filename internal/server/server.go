// Package server implements dragserved, the continuous drag-profiling
// service: it ingests binary drag logs over HTTP (streamed block-by-block,
// damaged uploads salvaged rather than crashed on), keeps them in a
// content-addressed store with background cross-run compaction, and
// answers report, site and regression-diff queries whose canonical output
// is byte-identical to a local draganalyze run over the same log.
package server

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"dragprof/internal/store"
)

// Options configure a Server.
type Options struct {
	// Store is the backing run store (required).
	Store *store.Store
	// Workers bounds per-request analysis parallelism (0: GOMAXPROCS).
	Workers int
	// MaxUploadBytes rejects larger uploads with 413 (default 1 GiB).
	MaxUploadBytes int64
	// RequestTimeout bounds query handling (default 60s). Ingest is
	// exempt: uploads are bounded by size, not time.
	RequestTimeout time.Duration
	// CompactDebounce delays background compaction after an ingest so
	// bursts coalesce into one merge (default 100ms).
	CompactDebounce time.Duration
	// Log receives request and compaction logging; nil discards it.
	Log *log.Logger
}

// Server is the dragserved HTTP service.
type Server struct {
	st       *store.Store
	workers  int
	maxBytes int64
	logger   *log.Logger
	handler  http.Handler

	metrics metrics

	compactKick chan struct{}
	debounce    time.Duration
	done        chan struct{}
	wg          sync.WaitGroup
	closeOnce   sync.Once
}

// New builds the service and starts its background compactor.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 1 << 30
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 60 * time.Second
	}
	if opts.CompactDebounce <= 0 {
		opts.CompactDebounce = 100 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = log.New(discard{}, "", 0)
	}
	s := &Server{
		st:          opts.Store,
		workers:     opts.Workers,
		maxBytes:    opts.MaxUploadBytes,
		logger:      opts.Log,
		compactKick: make(chan struct{}, 1),
		debounce:    opts.CompactDebounce,
		done:        make(chan struct{}),
	}

	api := http.NewServeMux()
	api.HandleFunc("GET /api/v1/runs", s.handleRuns)
	api.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	api.HandleFunc("GET /api/v1/runs/{id}/report", s.handleReport)
	api.HandleFunc("GET /api/v1/sites", s.handleSites)
	api.HandleFunc("GET /api/v1/diff", s.handleDiff)
	api.HandleFunc("GET /metrics", s.handleMetrics)
	api.HandleFunc("GET /healthz", s.handleHealthz)

	// The timeout middleware buffers responses, which would break pprof's
	// streaming endpoints and serve ingest poorly (uploads are bounded by
	// MaxUploadBytes, not wall clock) — so those routes bypass it.
	timed := http.TimeoutHandler(api, opts.RequestTimeout, "request timed out\n")
	root := http.NewServeMux()
	root.HandleFunc("POST /api/v1/runs", s.handleIngest)
	root.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	root.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	root.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	root.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	root.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	root.Handle("/", timed)
	s.handler = s.logged(root)

	s.wg.Add(1)
	go s.compactor()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Store exposes the backing store (read-only use: tests, stats).
func (s *Server) Store() *store.Store { return s.st }

// Close stops the background compactor, running one final compaction so
// nothing dirty is left behind. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		if s.st.Dirty() {
			s.compactNow()
		}
	})
}

// kickCompactor schedules a background compaction (coalescing kicks).
func (s *Server) kickCompactor() {
	select {
	case s.compactKick <- struct{}{}:
	default:
	}
}

// compactor is the background merge loop: each kick is debounced so a
// burst of pushes compacts once, after the burst.
func (s *Server) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.compactKick:
		}
		timer := time.NewTimer(s.debounce)
		select {
		case <-s.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		s.compactNow()
	}
}

func (s *Server) compactNow() {
	start := time.Now()
	if err := s.st.Compact(s.workers); err != nil {
		s.metrics.compactErrors.Add(1)
		s.logger.Printf("compact: %v", err)
		return
	}
	s.metrics.compactions.Add(1)
	s.logger.Printf("compact: merged summaries in %v", time.Since(start).Round(time.Millisecond))
}

// logged wraps the handler with request logging and a 5xx counter.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		if rec.status >= 500 {
			s.metrics.serverErrors.Add(1)
		}
		s.logger.Printf("%s %s -> %d", r.Method, r.URL.Path, rec.status)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
