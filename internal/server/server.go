// Package server implements dragserved, the continuous drag-profiling
// service: it ingests binary drag logs over HTTP (streamed block-by-block,
// damaged uploads salvaged rather than crashed on), keeps them in a
// content-addressed store with background cross-run compaction, and
// answers report, site and regression-diff queries whose canonical output
// is byte-identical to a local draganalyze run over the same log.
//
// The service degrades instead of falling over: the store opens (and runs
// its recovery scan) in the background while /healthz already answers,
// /readyz flips true only once recovery completes and back to false while
// draining, ingest concurrency is bounded and sheds excess load with
// 429 + Retry-After, and shutdown drains in-flight ingests and stops the
// compactor before the store is left behind.
package server

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dragprof/internal/store"
)

// Options configure a Server.
type Options struct {
	// Store is the backing run store. Either Store or OpenStore is
	// required.
	Store *store.Store
	// OpenStore opens the store in the background: the server starts
	// serving /healthz immediately and reports not-ready (503 +
	// Retry-After on data endpoints, /readyz false) until it returns.
	// An open failure pins the server not-ready; ReadyErr exposes it.
	OpenStore func() (*store.Store, error)
	// Workers bounds per-request analysis parallelism (0: GOMAXPROCS).
	Workers int
	// MaxUploadBytes rejects larger uploads with 413 (default 1 GiB).
	MaxUploadBytes int64
	// MaxInFlightIngest bounds concurrently-served ingest requests;
	// excess load is shed with 429 + Retry-After (default 64).
	MaxInFlightIngest int
	// RequestTimeout bounds query handling (default 60s). Ingest is
	// exempt: uploads are bounded by size, not time.
	RequestTimeout time.Duration
	// CompactDebounce delays background compaction after an ingest so
	// bursts coalesce into one merge (default 100ms).
	CompactDebounce time.Duration
	// Log receives request and compaction logging; nil discards it.
	Log *log.Logger
}

// Server is the dragserved HTTP service.
type Server struct {
	st       atomic.Pointer[store.Store]
	workers  int
	maxBytes int64
	logger   *log.Logger
	handler  http.Handler

	metrics metrics

	// readyCh closes when the background store open finishes (for better
	// or worse); openErr holds its failure.
	readyCh chan struct{}
	openErr atomic.Pointer[error]
	// draining flips once shutdown begins; ingestWG counts in-flight
	// ingest requests so drain can wait them out.
	draining atomic.Bool
	ingestWG sync.WaitGroup
	inflight chan struct{}

	compactKick chan struct{}
	debounce    time.Duration
	done        chan struct{}
	wg          sync.WaitGroup
	closeOnce   sync.Once
}

// New builds the service and starts its background compactor (and, with
// Options.OpenStore, the background store open).
func New(opts Options) *Server {
	if opts.Store == nil && opts.OpenStore == nil {
		panic("server: Options.Store or Options.OpenStore is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 1 << 30
	}
	if opts.MaxInFlightIngest <= 0 {
		opts.MaxInFlightIngest = 64
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 60 * time.Second
	}
	if opts.CompactDebounce <= 0 {
		opts.CompactDebounce = 100 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = log.New(discard{}, "", 0)
	}
	s := &Server{
		workers:     opts.Workers,
		maxBytes:    opts.MaxUploadBytes,
		logger:      opts.Log,
		readyCh:     make(chan struct{}),
		inflight:    make(chan struct{}, opts.MaxInFlightIngest),
		compactKick: make(chan struct{}, 1),
		debounce:    opts.CompactDebounce,
		done:        make(chan struct{}),
	}

	api := http.NewServeMux()
	api.HandleFunc("GET /api/v1/runs", s.handleRuns)
	api.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	api.HandleFunc("GET /api/v1/runs/{id}/report", s.handleReport)
	api.HandleFunc("GET /api/v1/sites", s.handleSites)
	api.HandleFunc("GET /api/v1/diff", s.handleDiff)

	// The timeout middleware buffers responses, which would break pprof's
	// streaming endpoints and serve ingest poorly (uploads are bounded by
	// MaxUploadBytes, not wall clock) — so those routes bypass it. The
	// probes and /metrics also bypass it (and the readiness gate): they
	// must answer while the store is still recovering.
	timed := http.TimeoutHandler(api, opts.RequestTimeout, "request timed out\n")
	root := http.NewServeMux()
	root.HandleFunc("POST /api/v1/runs", s.handleIngest)
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.HandleFunc("GET /metrics", s.handleMetrics)
	root.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	root.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	root.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	root.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	root.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	root.Handle("/", s.readyGate(timed))
	s.handler = s.logged(root)

	if opts.Store != nil {
		s.st.Store(opts.Store)
		close(s.readyCh)
	} else {
		s.wg.Add(1)
		go s.opener(opts.OpenStore)
	}
	s.wg.Add(1)
	go s.compactor()
	return s
}

// opener runs the store open (with its recovery scan) off the serving
// path, so the process binds its port and answers probes immediately.
func (s *Server) opener(open func() (*store.Store, error)) {
	defer s.wg.Done()
	start := time.Now()
	st, err := open()
	if err != nil {
		s.openErr.Store(&err)
		s.logger.Printf("store open failed: %v", err)
		close(s.readyCh)
		return
	}
	s.st.Store(st)
	close(s.readyCh)
	s.logger.Printf("store ready in %v (%d runs, %d quarantined)",
		time.Since(start).Round(time.Millisecond), st.NumRuns(), len(st.Quarantined()))
	if st.Dirty() {
		s.kickCompactor()
	}
}

// store returns the backing store, or nil while it is still opening (or
// failed to open).
func (s *Server) store() *store.Store { return s.st.Load() }

// Ready reports whether the server can take traffic: the store finished
// its recovery scan and shutdown has not begun.
func (s *Server) Ready() bool {
	select {
	case <-s.readyCh:
	default:
		return false
	}
	return s.store() != nil && !s.draining.Load()
}

// ReadyErr returns the store-open failure, if the background open
// failed. It reports nil while the open is still in progress.
func (s *Server) ReadyErr() error {
	if p := s.openErr.Load(); p != nil {
		return *p
	}
	return nil
}

// OpenDone closes when the background store open has finished, either
// way; check ReadyErr afterwards.
func (s *Server) OpenDone() <-chan struct{} { return s.readyCh }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Store exposes the backing store (read-only use: tests, stats). It is
// nil until the background open completes.
func (s *Server) Store() *store.Store { return s.store() }

// BeginDrain flips the server not-ready (readyz 503, new ingests shed
// with 503 + Retry-After) and waits for every in-flight ingest to
// finish. Call it before stopping the HTTP listener so load balancers
// stop routing while existing uploads complete.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.ingestWG.Wait()
}

// Close shuts the service down in dependency order: drain in-flight
// ingest, stop the background goroutines (compactor, opener) via their
// WaitGroup, then run one final compaction so nothing dirty is left
// behind. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.ingestWG.Wait()
		close(s.done)
		s.wg.Wait()
		if st := s.store(); st != nil && st.Dirty() {
			s.compactNow()
		}
	})
}

// readyGate rejects data-plane requests with 503 + Retry-After until the
// store has finished recovering.
func (s *Server) readyGate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.store() == nil {
			s.metrics.notReady.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds)
			msg := "store is recovering"
			if s.ReadyErr() != nil {
				msg = "store failed to open"
			}
			writeJSON(w, http.StatusServiceUnavailable, IngestResponse{Error: msg})
			return
		}
		h.ServeHTTP(w, r)
	})
}

// kickCompactor schedules a background compaction (coalescing kicks).
func (s *Server) kickCompactor() {
	select {
	case s.compactKick <- struct{}{}:
	default:
	}
}

// compactor is the background merge loop: each kick is debounced so a
// burst of pushes compacts once, after the burst. It idles until the
// store is ready.
func (s *Server) compactor() {
	defer s.wg.Done()
	select {
	case <-s.done:
		return
	case <-s.readyCh:
	}
	if s.store() == nil {
		return // open failed; nothing to compact, ever
	}
	for {
		select {
		case <-s.done:
			return
		case <-s.compactKick:
		}
		timer := time.NewTimer(s.debounce)
		select {
		case <-s.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		s.compactNow()
	}
}

func (s *Server) compactNow() {
	st := s.store()
	if st == nil {
		return
	}
	start := time.Now()
	if err := st.Compact(s.workers); err != nil {
		s.metrics.compactErrors.Add(1)
		s.logger.Printf("compact: %v", err)
		return
	}
	s.metrics.compactions.Add(1)
	s.logger.Printf("compact: merged summaries in %v", time.Since(start).Round(time.Millisecond))
}

// logged wraps the handler with request logging and a 5xx counter.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		if rec.status >= 500 && rec.status != http.StatusServiceUnavailable {
			s.metrics.serverErrors.Add(1)
		}
		s.logger.Printf("%s %s -> %d", r.Method, r.URL.Path, rec.status)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
