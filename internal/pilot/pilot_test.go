package pilot

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"dragprof/internal/analysis"
	"dragprof/internal/bench"
	"dragprof/internal/drag"
	"dragprof/internal/profile"
	"dragprof/internal/report"
	"dragprof/internal/server"
	"dragprof/internal/store"
	"dragprof/internal/transform"
	"dragprof/internal/vm"
)

// startServer runs an in-process dragserved over a temp store.
func startServer(t *testing.T) *server.Client {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Store: st, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return server.NewClient(ts.URL)
}

// seedRun profiles one benchmark's original version and pushes its binary
// log, mimicking the fleet runs dragpilot later sweeps.
func seedRun(t *testing.T, c *server.Client, name string) string {
	t.Helper()
	log := benchLog(t, name)
	resp, err := c.PushReader(context.Background(), log, server.PushOptions{})
	if err != nil {
		t.Fatalf("seeding %s: %v", name, err)
	}
	return resp.Run.ID
}

// benchLog profiles one benchmark original and returns its uncompressed
// binary log. The profile run name is the bare bench name so the store
// groups seeded and pushed runs under the same workload.
func benchLog(t *testing.T, name string) []byte {
	t.Helper()
	prof := benchProfile(t, name)
	var buf bytes.Buffer
	if err := profile.WriteBinaryLog(&buf, prof, profile.BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func benchProfile(t *testing.T, name string) *profile.Profile {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := profile.Run(cp.Program, name, vm.Config{
		HeapCapacity: 48 << 20,
		GCInterval:   bench.DefaultGCInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestPilotReproducesPaperRewrites is the end-to-end loop: seed a server
// with euler and jack fleet profiles, sweep with dragpilot's engine, and
// check it rediscovers the paper's rewrites from served data alone —
// euler's phase-guarded Mesh.scratch kill (≥75% drag saving via the
// server-side diff) and jack's lazy allocation of the Production fields —
// with byte-identical program output.
func TestPilotReproducesPaperRewrites(t *testing.T) {
	c := startServer(t)
	eulerSeed := seedRun(t, c, "euler")
	jackSeed := seedRun(t, c, "jack")

	pr := analysis.NewProver()
	opts := Options{
		Client:    c,
		Workloads: []string{"euler", "jack"},
		Push:      true,
		Prover:    pr,
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != 2 {
		t.Fatalf("swept %d workloads, want 2", len(res.Workloads))
	}

	euler := res.Workloads[0]
	if euler.Workload != "euler" {
		t.Fatalf("first workload is %s, want euler", euler.Workload)
	}
	if !euler.OutputIdentical {
		t.Error("euler: rewritten output diverged")
	}
	if euler.BaseRun != eulerSeed {
		t.Errorf("euler diff base is %s, want the seeded run %s", euler.BaseRun, eulerSeed)
	}
	if euler.Diff == nil {
		t.Fatal("euler: no server-side diff")
	}
	if euler.DragSavingPct < 75 {
		t.Errorf("euler drag saving %.1f%%, want >= 75%% (the paper's Table 2 scale)", euler.DragSavingPct)
	}
	if !hasApplied(euler, "phase-guarded") {
		t.Errorf("euler: no applied phase-guarded kill; actions: %v", describe(euler))
	}

	jack := res.Workloads[1]
	if jack.Workload != "jack" {
		t.Fatalf("second workload is %s, want jack", jack.Workload)
	}
	if !jack.OutputIdentical {
		t.Error("jack: rewritten output diverged")
	}
	if jack.BaseRun != jackSeed {
		t.Errorf("jack diff base is %s, want the seeded run %s", jack.BaseRun, jackSeed)
	}
	if !hasApplied(jack, "lazy allocation") {
		t.Errorf("jack: no applied lazy allocation; actions: %v", describe(jack))
	}
	if jack.DragSavingPct <= 0 {
		t.Errorf("jack drag saving %.1f%%, want > 0", jack.DragSavingPct)
	}

	if res.SARIF == "" || !strings.Contains(res.SARIF, "dragprof/v1") {
		t.Error("SARIF log missing fingerprints")
	}

	// Sweep again with the same prover: the program content hashes are
	// unchanged, so every site verdict must come from the cache, and the
	// whole run — SARIF included — must be byte-identical.
	res2, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SARIF != res.SARIF {
		t.Error("second sweep produced different SARIF (nondeterministic cache)")
	}
	stats := pr.Stats()
	if stats.AnalysisRuns != 2 {
		t.Errorf("prover ran %d analyses, want 2 (one per program)", stats.AnalysisRuns)
	}
	if stats.CacheHits == 0 {
		t.Error("second sweep hit the cache zero times")
	}
	for _, wr := range res2.Workloads {
		for _, v := range wr.Verdicts {
			if !v.CacheHit {
				t.Errorf("%s: verdict for %q not answered from cache on second sweep", wr.Workload, v.Ref.Desc)
			}
		}
	}
}

// TestPilotBaselineSuppression: feeding a sweep's own SARIF back as the
// baseline suppresses every finding; CI gates on the new ones only.
func TestPilotBaselineSuppression(t *testing.T) {
	c := startServer(t)
	seedRun(t, c, "euler")

	opts := Options{Client: c, Workloads: []string{"euler"}, Push: false}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewFindings == 0 {
		t.Fatal("sweep produced no findings to baseline")
	}

	baseline, err := report.ReadBaseline([]byte(res.SARIF))
	if err != nil {
		t.Fatal(err)
	}
	opts.Baseline = baseline
	res2, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NewFindings != 0 {
		t.Errorf("%d findings survived their own baseline", res2.NewFindings)
	}
	if res2.Suppressed == 0 {
		t.Error("baseline suppressed nothing")
	}
	if !strings.Contains(res2.SARIF, `"baselineState": "unchanged"`) {
		t.Error("baselined SARIF carries no unchanged states")
	}
}

// TestPilotSalvagedProfileMatchesFull is the exit-6 path: drive the prove →
// rewrite pipeline from a salvaged partial profile (a binary log truncated
// at a block boundary) and check the proved rewrites match the full-profile
// run — partial fleet data must not change what the analyses prove, only
// how much of the site list is visible.
func TestPilotSalvagedProfileMatchesFull(t *testing.T) {
	full := benchProfile(t, "euler")

	var buf bytes.Buffer
	if err := profile.WriteBinaryLog(&buf, full, profile.BinaryOptions{BlockRecords: 64}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	ends, err := profile.BlockOffsets(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) < 2 {
		t.Fatalf("log has %d blocks, need >= 2 to truncate meaningfully", len(ends))
	}
	// Cut at a mid-list block boundary: the kept prefix decodes intact,
	// the rest of the declared records are gone — the canonical exit-6
	// partial profile.
	cut := ends[(len(ends)-1)/2]
	salvaged, rep, err := profile.SalvageLog(bytes.NewReader(data[:cut]))
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if rep == nil || rep.Clean() {
		t.Fatal("truncated log salvaged without a fault report")
	}

	fullActions := proveAndRewrite(t, full)
	partActions := proveAndRewrite(t, salvaged)
	if len(fullActions) == 0 {
		t.Fatal("full profile produced no applied rewrites")
	}
	// Every rewrite the salvaged prefix selects must be one the full
	// profile selects too, and the prefix must still surface the headline
	// euler rewrite (Mesh.scratch dominates from the first blocks).
	fullSet := make(map[string]bool, len(fullActions))
	for _, a := range fullActions {
		fullSet[a] = true
	}
	for _, a := range partActions {
		if !fullSet[a] {
			t.Errorf("salvaged profile selected rewrite absent from the full run: %s", a)
		}
	}
	found := false
	for _, a := range partActions {
		if strings.Contains(a, "phase-guarded") {
			found = true
		}
	}
	if !found {
		t.Errorf("salvaged prefix lost the phase-guarded kill; got %v", partActions)
	}
}

// proveAndRewrite mirrors the pilot's per-workload pipeline, driven by a
// local profile instead of served summaries: top nested sites → batch
// prover → StaticTransform with pattern-selected lazy sites. Returns the
// applied actions as "strategy @ site" strings.
func proveAndRewrite(t *testing.T, prof *profile.Profile) []string {
	t.Helper()
	rep := drag.Analyze(prof, drag.Options{})
	var refs []analysis.SiteRef
	patternOf := map[string]string{}
	for i, g := range rep.ByNestedSite {
		if i >= 10 {
			break
		}
		refs = append(refs, analysis.SiteRef{Desc: g.Desc})
		patternOf[g.Desc] = g.Pattern.String()
	}

	b, err := bench.ByName("euler")
	if err != nil {
		t.Fatal(err)
	}
	cpProve, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := analysis.NewProver().ProveSites(cpProve.Program, refs)
	if err != nil {
		t.Fatal(err)
	}
	var lazy []int32
	for _, v := range verdicts {
		if v.Status != analysis.VerdictProved && v.Anchor >= 0 &&
			strings.Contains(patternOf[v.Ref.Desc], "never-used") {
			lazy = append(lazy, v.Anchor)
		}
	}
	cp, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		t.Fatal(err)
	}
	actions, err := transform.StaticTransformOpts(cp.Program, transform.StaticOptions{LazySites: lazy})
	if err != nil {
		t.Fatal(err)
	}
	var applied []string
	for _, a := range actions {
		if a.Applied {
			applied = append(applied, a.Strategy+" @ "+a.SiteDesc)
		}
	}
	return applied
}

func hasApplied(wr *WorkloadResult, strategyPart string) bool {
	for _, a := range wr.Actions {
		if a.Applied && strings.Contains(a.Strategy, strategyPart) {
			return true
		}
	}
	return false
}

func describe(wr *WorkloadResult) []string {
	var out []string
	for _, a := range wr.Actions {
		out = append(out, a.Strategy+" @ "+a.SiteDesc+" applied="+boolStr(a.Applied)+" ("+a.Reason+")")
	}
	return out
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
