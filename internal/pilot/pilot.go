// Package pilot closes the profiling loop: it pulls the fleet's drag-hot
// allocation sites from a dragserved instance, asks the batch prover which
// of the paper's rewrites are sound, applies the proved (and
// profile-selected, statically validated) ones through StaticTransform,
// re-profiles the rewritten program against the served baseline, and
// reports the reachable-but-dead gap it closed. Sites the analyses find
// plausible but cannot prove become SARIF suggestions for a human, with
// stable fingerprints so a stored baseline suppresses everything already
// triaged.
package pilot

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"dragprof/internal/analysis"
	"dragprof/internal/bench"
	"dragprof/internal/drag"
	"dragprof/internal/lint"
	"dragprof/internal/profile"
	"dragprof/internal/report"
	"dragprof/internal/server"
	"dragprof/internal/store"
	"dragprof/internal/transform"
	"dragprof/internal/vm"
)

// Options configure one autofix sweep.
type Options struct {
	// Client talks to the dragserved instance holding the fleet profiles.
	Client *server.Client
	// Workloads restricts the sweep to these benchmark names; empty sweeps
	// every served workload that names an embedded benchmark.
	Workloads []string
	// Top bounds how many drag-hot sites per workload are sent to the
	// prover (default 10, the paper's table depth).
	Top int
	// GCInterval and HeapBytes configure the re-profiling runs; they must
	// match the served baseline runs for the diff to be apples-to-apples
	// (defaults: bench.DefaultGCInterval, 48 MB).
	GCInterval int64
	HeapBytes  int64
	// Push uploads the re-profiled run and queries the server-side diff
	// against the stored baseline. Off, the sweep still rewrites and
	// measures in-process (dry run).
	Push bool
	// Baseline suppresses previously-triaged SARIF findings.
	Baseline *report.Baseline
	// Prover supplies the proof cache; nil builds a fresh one (shared
	// provers amortize analysis across sweeps of unchanged programs).
	Prover *analysis.Prover
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// WorkloadResult is the sweep outcome for one benchmark.
type WorkloadResult struct {
	// Workload is the benchmark name.
	Workload string `json:"workload"`
	// Refs are the served drag-hot site references sent to the prover and
	// Verdicts the prover's answers (sorted by SortVerdicts).
	Refs     []analysis.SiteRef     `json:"refs"`
	Verdicts []analysis.SiteVerdict `json:"verdicts"`
	// Actions are the StaticTransform actions (applied and rejected) and
	// Applied the applied count.
	Actions []transform.Action `json:"actions"`
	Applied int                `json:"applied"`
	// MonoCalls are the RTA-monomorphic virtual calls (dragopt's
	// devirtualization opportunities), surfaced as informational
	// monomorphic-call diagnostics.
	MonoCalls []lint.Finding `json:"monoCalls,omitempty"`
	// OutputIdentical reports that the rewritten program printed exactly
	// the original's output — the safety oracle.
	OutputIdentical bool `json:"outputIdentical"`
	// Local compares the in-process before/after profiles.
	Local drag.Comparison `json:"local"`
	// BaseRun/HeadRun are store ids: the served baseline run diffed
	// against and the pushed re-profile (empty without Push).
	BaseRun string `json:"baseRun,omitempty"`
	HeadRun string `json:"headRun,omitempty"`
	// Diff is the server-side comparison (nil without Push or baseline).
	Diff *server.DiffResponse `json:"diff,omitempty"`
	// DragSavingPct is the headline number: the served diff's saving when
	// available, the local comparison's otherwise.
	DragSavingPct float64 `json:"dragSavingPct"`
}

// Result is one full sweep.
type Result struct {
	Workloads []*WorkloadResult `json:"workloads"`
	// Diagnostics are the SARIF-bound findings (suggestions for
	// plausible-but-unproved sites and notes for applied rewrites), before
	// baseline filtering; NewFindings/Suppressed count the baseline split.
	Diagnostics []report.Diagnostic `json:"diagnostics"`
	NewFindings int                 `json:"newFindings"`
	Suppressed  int                 `json:"suppressed"`
	// SARIF is the rendered log (baseline states stamped when a baseline
	// was given).
	SARIF string `json:"-"`
	// Stats snapshots the prover cache counters after the sweep.
	Stats analysis.ProverStats `json:"stats"`
}

// Rules is the SARIF rule table for pilot diagnostics.
func Rules() []report.RuleInfo {
	return []report.RuleInfo{
		{ID: "autofix-applied", Description: "a proved rewrite was applied automatically"},
		{ID: "autofix-rejected", Description: "a selected rewrite failed static validation and was not applied"},
		{ID: "suggest-write-only", Description: "object state is written but never read back; consider removing the allocation"},
		{ID: "suggest-assign-null", Description: "the object stays confined to its allocating method; consider nulling the last holder"},
		{ID: "suggest-lazy-alloc", Description: "most objects from the site are never used; consider lazy allocation"},
		{ID: lint.RuleMonomorphicCall, Description: lint.RuleDescriptions[lint.RuleMonomorphicCall]},
	}
}

func defaults(opts Options) Options {
	if opts.Top <= 0 {
		opts.Top = 10
	}
	if opts.GCInterval <= 0 {
		opts.GCInterval = bench.DefaultGCInterval
	}
	if opts.HeapBytes <= 0 {
		opts.HeapBytes = 48 << 20
	}
	if opts.Prover == nil {
		opts.Prover = analysis.NewProver()
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	return opts
}

// Run executes one sweep. The result is deterministic for a fixed server
// state and option set: workloads are visited in a fixed order, verdicts
// and diagnostics are sorted, and the rewritten programs and their
// re-profiles are replayed on the deterministic VM.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts = defaults(opts)
	if opts.Client == nil {
		return nil, fmt.Errorf("pilot: no server client configured")
	}

	sums, err := opts.Client.Sites(ctx, "drag", 0)
	if err != nil {
		return nil, fmt.Errorf("pilot: fetching served sites: %w", err)
	}
	byWorkload := make(map[string][]*store.SiteSummary)
	for _, s := range sums {
		byWorkload[s.Name] = append(byWorkload[s.Name], s)
	}

	workloads := opts.Workloads
	explicit := len(workloads) > 0
	if !explicit {
		for name := range byWorkload {
			if _, err := bench.ByName(name); err == nil {
				workloads = append(workloads, name)
			}
		}
		sort.Strings(workloads)
	}

	res := &Result{}
	for _, name := range workloads {
		if _, err := bench.ByName(name); err != nil {
			if explicit {
				return nil, fmt.Errorf("pilot: %w", err)
			}
			continue
		}
		wr, err := runWorkload(ctx, opts, name, byWorkload[name])
		if err != nil {
			return nil, fmt.Errorf("pilot: %s: %w", name, err)
		}
		res.Workloads = append(res.Workloads, wr)
		res.Diagnostics = append(res.Diagnostics, diagnose(wr)...)
	}

	fresh, suppressed := report.FilterNew(res.Diagnostics, opts.Baseline)
	res.NewFindings, res.Suppressed = len(fresh), suppressed
	sarif, err := report.SARIFWithOptions("dragpilot", "1", Rules(), res.Diagnostics,
		report.SARIFOptions{Baseline: opts.Baseline})
	if err != nil {
		return nil, fmt.Errorf("pilot: rendering SARIF: %w", err)
	}
	res.SARIF = sarif
	res.Stats = opts.Prover.Stats()
	return res, nil
}

// runWorkload sweeps one benchmark: prove the served top sites, rewrite,
// re-profile, and (with Push) upload and diff against the served baseline.
func runWorkload(ctx context.Context, opts Options, name string, sums []*store.SiteSummary) (*WorkloadResult, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return nil, err
	}
	// The served summaries arrive drag-sorted across workloads; re-sort
	// within the workload (drag descending, description tiebreak) before
	// truncating so the top-N cut is deterministic.
	sums = append([]*store.SiteSummary(nil), sums...)
	sort.SliceStable(sums, func(i, j int) bool {
		if sums[i].Drag != sums[j].Drag {
			return sums[i].Drag > sums[j].Drag
		}
		return sums[i].Desc < sums[j].Desc
	})
	if len(sums) > opts.Top {
		sums = sums[:opts.Top]
	}

	wr := &WorkloadResult{Workload: name}
	patternOf := make(map[string]string, len(sums))
	for _, s := range sums {
		wr.Refs = append(wr.Refs, analysis.SiteRef{Desc: s.Desc})
		patternOf[s.Desc] = s.Pattern
	}

	// Three independent compiles of the same deterministic sources: the
	// prover keeps a live reference to its program inside the content-hash
	// cache, so the copy handed to it must never be mutated; the transform
	// edits its copy in place; and the untouched third copy replays the
	// original for the output-identity check.
	cpProve, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		return nil, err
	}
	verdicts, err := opts.Prover.ProveSites(cpProve.Program, wr.Refs)
	if err != nil {
		return nil, err
	}
	// Devirtualization opportunities ride along as informational findings:
	// the prover's program copy is read-only, so the extra call graph here
	// cannot disturb the cached analyses.
	wr.MonoCalls = lint.MonomorphicCallFindings(cpProve.Program,
		analysis.BuildCallGraph(cpProve.Program))

	// Profile-selected lazy-allocation candidates: sites the prover could
	// not prove outright, whose served use pattern says most objects are
	// never used, anchored at application code. StaticTransform validates
	// each before touching bytecode, so over-selection costs only a
	// rejected action.
	var lazySites []int32
	for _, v := range verdicts {
		if v.Status == analysis.VerdictProved || v.Anchor < 0 {
			continue
		}
		if strings.Contains(patternOf[v.Ref.Desc], "never-used") {
			lazySites = append(lazySites, v.Anchor)
		}
	}
	analysis.SortVerdicts(verdicts)
	wr.Verdicts = verdicts

	cpHead, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		return nil, err
	}
	actions, err := transform.StaticTransformOpts(cpHead.Program, transform.StaticOptions{LazySites: lazySites})
	if err != nil {
		return nil, err
	}
	wr.Actions = actions
	for _, a := range actions {
		if a.Applied {
			wr.Applied++
		}
	}
	fmt.Fprintf(opts.Log, "pilot: %s: %d sites proved over, %d rewrites applied (%d considered)\n",
		name, len(wr.Refs), wr.Applied, len(actions))

	cpBase, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		return nil, err
	}
	cfg := vm.Config{HeapCapacity: opts.HeapBytes, GCInterval: opts.GCInterval}
	baseProf, baseVM, err := profile.Run(cpBase.Program, name, cfg)
	if err != nil {
		return nil, fmt.Errorf("original run: %w", err)
	}
	// The rewritten program is a different build: its site and chain
	// tables no longer match the fleet runs, so its profile is pushed
	// under a derived workload name rather than polluting (and breaking)
	// the original workload's cross-run merge.
	headProf, headVM, err := profile.Run(cpHead.Program, name+"/rewritten", cfg)
	if err != nil {
		return nil, fmt.Errorf("rewritten run: %w", err)
	}
	wr.OutputIdentical = baseVM.Output() == headVM.Output()
	if !wr.OutputIdentical {
		return nil, fmt.Errorf("rewritten program output diverges from the original (%d rewrites applied)", wr.Applied)
	}
	baseRep := drag.Analyze(baseProf, drag.Options{})
	headRep := drag.Analyze(headProf, drag.Options{})
	local, err := drag.CompareChecked(baseRep, headRep)
	if err != nil {
		// Both runs share cfg, so this can only mean the sampling config
		// diverged mid-sweep — a misconfiguration, not a finding.
		return nil, fmt.Errorf("comparing rewritten run: %w", err)
	}
	wr.Local = local
	wr.DragSavingPct = wr.Local.DragSavingPct

	if opts.Push {
		if err := pushAndDiff(ctx, opts, wr, headProf); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(opts.Log, "pilot: %s: drag saving %.1f%% (output identical)\n", name, wr.DragSavingPct)
	return wr, nil
}

// pushAndDiff uploads the re-profiled run and fills in the server-side
// comparison against the oldest clean served run of the workload.
func pushAndDiff(ctx context.Context, opts Options, wr *WorkloadResult, headProf *profile.Profile) error {
	var buf bytes.Buffer
	if err := profile.WriteBinaryLog(&buf, headProf, profile.BinaryOptions{}); err != nil {
		return fmt.Errorf("encoding rewritten-run log: %w", err)
	}
	resp, err := opts.Client.PushReader(ctx, buf.Bytes(), server.PushOptions{})
	if err != nil {
		return fmt.Errorf("pushing rewritten run: %w", err)
	}
	wr.HeadRun = resp.Run.ID

	// The baseline is the lowest-id clean served run of the original
	// workload; after-runs live under the "/rewritten" name, so they can
	// never be mistaken for a baseline even across repeat sweeps.
	runs, err := opts.Client.Runs(ctx)
	if err != nil {
		return fmt.Errorf("listing served runs: %w", err)
	}
	base := ""
	for _, r := range runs {
		if r.Name == wr.Workload && !r.Salvaged && r.ID != wr.HeadRun && (base == "" || r.ID < base) {
			base = r.ID
		}
	}
	if base == "" {
		fmt.Fprintf(opts.Log, "pilot: %s: no served baseline run to diff against\n", wr.Workload)
		return nil
	}
	wr.BaseRun = base
	diff, err := opts.Client.Diff(ctx, base, wr.HeadRun)
	if err != nil {
		return fmt.Errorf("diffing %s against %s: %w", wr.HeadRun, base, err)
	}
	wr.Diff = diff
	wr.DragSavingPct = diff.DragSavingPct
	return nil
}

// diagnose turns one workload's sweep into SARIF-bound diagnostics:
// applied rewrites as notes, validation rejections of profile-selected
// rewrites as warnings, and plausible-but-unproved verdicts as the
// suggestions a human should triage. Verdicts and actions are already in
// deterministic order, so the diagnostic list is too.
func diagnose(wr *WorkloadResult) []report.Diagnostic {
	var out []report.Diagnostic
	hashOf := make(map[int32]string, len(wr.Verdicts))
	for _, v := range wr.Verdicts {
		if v.Site >= 0 {
			hashOf[v.Site] = v.MethodHash
		}
		if v.Anchor >= 0 && v.Anchor != v.Site {
			// The anchor's own hash is unknown here; the site hash still
			// pins the finding to unchanged code.
			if _, ok := hashOf[v.Anchor]; !ok {
				hashOf[v.Anchor] = v.MethodHash
			}
		}
	}
	for _, a := range wr.Actions {
		props := map[string]any{
			"workload": wr.Workload,
			"site":     a.SiteDesc,
			"strategy": a.Strategy,
		}
		if h := hashOf[a.Site]; h != "" {
			props["methodHash"] = h
		}
		if a.Applied {
			out = append(out, report.Diagnostic{
				RuleID:  "autofix-applied",
				Level:   "note",
				Message: fmt.Sprintf("%s: applied %s at %s: %s", wr.Workload, a.Strategy, a.SiteDesc, a.Reason),
				File:    wr.Workload, Properties: props,
			})
		} else {
			props["reason"] = a.Reason
			out = append(out, report.Diagnostic{
				RuleID:  "autofix-rejected",
				Level:   "warning",
				Message: fmt.Sprintf("%s: %s at %s not applied: %s", wr.Workload, a.Strategy, a.SiteDesc, a.Reason),
				File:    wr.Workload, Properties: props,
			})
		}
	}
	for _, f := range wr.MonoCalls {
		out = append(out, report.Diagnostic{
			RuleID:  f.Rule,
			Level:   "note",
			Message: fmt.Sprintf("%s: %s", wr.Workload, f.Message),
			File:    f.File,
			Line:    f.Line,
			Properties: map[string]any{
				"workload":   wr.Workload,
				"method":     f.Method,
				"methodHash": f.MethodHash,
				"confidence": f.Confidence,
			},
		})
	}
	for _, v := range wr.Verdicts {
		if v.Status != analysis.VerdictPlausible {
			continue
		}
		props := map[string]any{
			"workload": wr.Workload,
			"site":     v.Desc,
			"kind":     v.Kind,
		}
		if v.MethodHash != "" {
			props["methodHash"] = v.MethodHash
		}
		out = append(out, report.Diagnostic{
			RuleID:     "suggest-" + v.Kind,
			Level:      "warning",
			Message:    fmt.Sprintf("%s: %s: %s", wr.Workload, v.Desc, v.Evidence),
			File:       v.File,
			Line:       v.Line,
			Properties: props,
		})
	}
	return out
}

// GapText renders the reachable-but-dead gap table: per workload, the
// reachable and in-use space-time integrals before and after the sweep's
// rewrites, the drag gap between them, and how much of it closed. Server
// diffs are preferred; workloads without one fall back to the in-process
// comparison (marked "local").
func GapText(w io.Writer, res *Result) {
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %8s  %s\n",
		"workload", "reach-before", "gap-before", "reach-after", "gap-after", "closed", "source")
	for _, wr := range res.Workloads {
		baseReach, baseInUse := wr.Local.OriginalReachable, wr.Local.OriginalInUse
		headReach, headInUse := wr.Local.ReducedReachable, wr.Local.ReducedInUse
		src := "local"
		if wr.Diff != nil {
			baseReach, baseInUse = wr.Diff.BaseReachableMB2, wr.Diff.BaseInUseMB2
			headReach, headInUse = wr.Diff.HeadReachableMB2, wr.Diff.HeadInUseMB2
			src = "served " + short(wr.BaseRun) + ".." + short(wr.HeadRun)
		}
		fmt.Fprintf(w, "%-10s %11.2fM² %11.2fM² %11.2fM² %11.2fM² %7.1f%%  %s\n",
			wr.Workload, baseReach, baseReach-baseInUse, headReach, headReach-headInUse,
			wr.DragSavingPct, src)
	}
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
