package vm_test

import (
	"strings"
	"testing"

	"dragprof/internal/mj"
	"dragprof/internal/vm"
)

func TestCastSuccessAndFailure(t *testing.T) {
	out := run(t, `
class Animal { int noise() { return 1; } }
class Dog extends Animal { int noise() { return 2; } }
class Cat extends Animal { int noise() { return 3; } }
class Main {
    static void main() {
        Animal a = new Dog();
        Dog d = (Dog) a;          // succeeds
        printInt(d.noise());
        Animal nullA = null;
        Dog dn = (Dog) nullA;     // null passes any cast
        if (dn == null) { println("null ok"); }
        try {
            Cat c = (Cat) a;      // Dog is not a Cat
            printInt(c.noise());
        } catch (ClassCastException e) {
            println("caught cast");
        }
    }
}`)
	want := "2\nnull ok\ncaught cast\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestThrowNullBecomesNPE(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        try {
            RuntimeException e = null;
            throw e;
        } catch (NullPointerException npe) {
            println("npe");
        }
    }
}`)
	if out != "npe\n" {
		t.Errorf("output = %q", out)
	}
}

func TestExceptionAcrossFrames(t *testing.T) {
	out := run(t, `
class Main {
    static int depth3() { throw new RuntimeException("deep"); }
    static int depth2() { return depth3() + 1; }
    static int depth1() { return depth2() + 1; }
    static void main() {
        try {
            printInt(depth1());
        } catch (RuntimeException e) {
            println(e.getMessage());
        }
        println("after");
    }
}`)
	if out != "deep\nafter\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFinalizerResurrectionSemantics(t *testing.T) {
	// A finalizer that stores this into a static resurrects the object;
	// finalize must not run twice.
	out := run(t, `
class Phoenix {
    static Phoenix saved;
    static int finalizations;
    void finalize() {
        Phoenix.finalizations = Phoenix.finalizations + 1;
        Phoenix.saved = this;
    }
}
class Main {
    static void birth() {
        Phoenix p = new Phoenix();
    }
    static void main() {
        birth();
        gc();
        if (Phoenix.saved != null) { println("resurrected"); }
        Phoenix.saved = null;
        gc();
        gc();
        printInt(Phoenix.finalizations);
    }
}`)
	want := "resurrected\n1\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFinalizerThrowIsSwallowed(t *testing.T) {
	out := run(t, `
class Grumpy {
    void finalize() { throw new RuntimeException("ignored"); }
}
class Main {
    static void spawn() { Grumpy g = new Grumpy(); }
    static void main() {
        spawn();
        gc();
        gc();
        println("survived finalizer throw");
    }
}`)
	if out != "survived finalizer throw\n" {
		t.Errorf("output = %q", out)
	}
}

func TestOOMPreallocatedReuse(t *testing.T) {
	// Two separate OOM throws reuse the preallocated error instance.
	out := run(t, `
class Main {
    static int fill(int[][] keep) {
        int i = 0;
        try {
            while (true) {
                keep[i % keep.length] = new int[100000];
                i = i + 1;
            }
        } catch (OutOfMemoryError e) {
            return i;
        }
    }
    static void main() {
        int[][] keep = new int[200][];
        int a = fill(keep);
        if (a > 0) { println("first oom"); }
        int b = fill(keep);
        if (b >= 0) { println("second oom"); }
    }
}`)
	want := "first oom\nsecond oom\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestStringCharAtAndBounds(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        String s = "abc";
        try {
            printInt(s.charAt(10));
        } catch (IndexOutOfBoundsException e) {
            println("bounds");
        }
    }
}`)
	if out != "bounds\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLiveSlotFilterSoundness(t *testing.T) {
	// An adversarial filter claiming everything dead must not crash the
	// VM when the program only reaches objects through static fields and
	// the operand stack (which the filter cannot suppress).
	prog, _, err := mj.CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": `
class G { static int[] keep; }
class Main {
    static void main() {
        G.keep = new int[1000];
        for (int i = 0; i < 20000; i = i + 1) {
            int[] t = new int[64];
            t[0] = i;
        }
        printInt(G.keep.length);
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{
		HeapCapacity: 2 << 20,
		LiveSlotFilter: func(method int32, pc int, slot int32) bool {
			return false // every local "dead"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(m.Output(), "1000") {
		t.Errorf("output = %q", m.Output())
	}
}

func TestRecursionDepth(t *testing.T) {
	out := run(t, `
class Main {
    static int down(int n) {
        if (n == 0) { return 0; }
        return 1 + down(n - 1);
    }
    static void main() {
        printInt(down(20000));
    }
}`)
	if out != "20000\n" {
		t.Errorf("output = %q", out)
	}
}

func TestNegativeArraySize(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        try {
            int n = 0 - 5;
            int[] a = new int[n];
            printInt(a.length);
        } catch (NegativeArraySizeException e) {
            println("negative");
        }
    }
}`)
	if out != "negative\n" {
		t.Errorf("output = %q", out)
	}
}
