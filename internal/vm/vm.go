package vm

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"dragprof/internal/bytecode"
	"dragprof/internal/gc"
	"dragprof/internal/heap"
	"dragprof/internal/xrand"
)

// CollectorKind selects the garbage collector.
type CollectorKind string

// Collector kinds.
const (
	// MarkSweep is the default full-heap collector (classic JVM).
	MarkSweep CollectorKind = "mark-sweep"
	// MarkCompact adds a sliding compaction pass after each sweep.
	MarkCompact CollectorKind = "mark-compact"
	// Generational is the two-generation collector (HotSpot-style).
	Generational CollectorKind = "generational"
)

// Config configures a VM instance.
type Config struct {
	// HeapCapacity is the heap size in bytes (default 48 MB, the paper's
	// maximum heap for the SPECjvm98 runs).
	HeapCapacity int64
	// Collector selects the GC (default MarkSweep).
	Collector CollectorKind
	// NurserySize is the generational nursery budget (default 4 MB).
	NurserySize int64
	// GCInterval triggers a deep GC every GCInterval allocated bytes
	// (the paper's 100 KB profiling trigger); 0 disables it.
	GCInterval int64
	// Out receives program output; nil captures it internally.
	Out io.Writer
	// Listener observes allocation and use events; nil disables events.
	Listener Listener
	// MaxSteps aborts runaway programs (default 4e9 instructions).
	MaxSteps int64
	// Seed seeds the deterministic pseudo-random builtin.
	Seed uint64
	// SampleRate is the per-byte probability of the profiler's
	// byte-weighted sampler. Outside (0, 1) — including the zero value —
	// every allocation is profiled (the exact, legacy mode). Inside it,
	// the listener sees only sampled objects: an object of s bytes is
	// selected with probability 1-(1-SampleRate)^s via a geometric byte
	// countdown, and unsampled objects emit no events at all.
	SampleRate float64
	// SampleSeed seeds the sampler's deterministic generator; 0 selects a
	// fixed default, so runs are reproducible unless a seed is chosen.
	SampleSeed uint64
	// LiveSlotFilter, when non-nil, lets collectors skip dead local
	// slots as roots: a slot is treated as a root only when the filter
	// reports it live at the frame's current pc. This is the
	// Agesen-style liveness/GC integration the paper cites as the
	// automatic alternative to source-level null assignment.
	LiveSlotFilter func(method int32, pc int, slot int32) bool
	// Budgets bound the run's resources (allocation bytes, live heap,
	// wall clock, context cancellation); exhaustion halts the run with a
	// *BudgetError at a safepoint, trailers intact.
	Budgets Budgets
}

// DefaultHeapCapacity matches the paper's 48 MB maximum heap.
const DefaultHeapCapacity = 48 << 20

// Cost is the VM's deterministic work accounting, the basis of the
// reproduction's Table 4 runtime comparison.
type Cost struct {
	// Instructions counts executed bytecode instructions.
	Instructions int64
	// Allocations counts objects allocated.
	Allocations int64
	// AllocBytes counts bytes allocated.
	AllocBytes int64
	// Builtins counts builtin invocations.
	Builtins int64
	// RegionFrees counts objects reclaimed by frame-region exit (the
	// optimizer's escape-proved allocations), RegionFreedBytes their bytes.
	RegionFrees      int64
	RegionFreedBytes int64
	// GC is the collector's accumulated statistics.
	GC gc.Stats
}

// RuntimeUnits folds the cost into a single scalar: one unit per
// instruction, ten per allocation (header setup, zeroing amortized), one
// per eight allocated bytes, plus collector work. A region free costs one
// unit, same as a sweep free, so optimized and baseline runs compare on
// equal footing.
func (c Cost) RuntimeUnits() int64 {
	return c.Instructions + 10*c.Allocations + c.AllocBytes/8 + c.RegionFrees + c.GC.Work()
}

// regionEntry records one frame-region allocation. The AllocID guards the
// exit-time free against handles the collector already reclaimed and
// recycled for unrelated objects.
type regionEntry struct {
	h  heap.Handle
	id uint64
}

type frame struct {
	m      *bytecode.Method
	pc     int
	lastpc int
	locals []heap.Value
	stack  []heap.Value
	chain  int32
	// region lists this frame's escape-proved allocations
	// (RegionNewObject/RegionNewArray); they are freed wholesale when the
	// frame exits. The list is deliberately NOT a GC root: if the
	// collector frees an entry first, the AllocID guard skips it.
	region []regionEntry
}

func (f *frame) push(v heap.Value) { f.stack = append(f.stack, v) }

func (f *frame) pop() heap.Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// VM interprets a compiled program over the managed heap.
type VM struct {
	prog *bytecode.Program
	hp   *heap.Heap
	col  gc.Collector
	bar  gc.Barrier

	frames  []*frame
	statics [][]heap.Value

	chains   *ChainTable
	listener Listener
	// sampler is non-nil only when cfg.SampleRate is in (0, 1); its byte
	// countdown gates every listener event.
	sampler *xrand.Skipper

	out    io.Writer
	outBuf *bytes.Buffer

	interned      map[int32]heap.Handle
	tempRoots     []heap.Handle
	finalizeRoots []heap.Handle
	preallocOOM   heap.Handle

	// finalizeVIndex caches the vtable index of finalize() per class
	// (-1 when absent).
	finalizeVIndex []int32

	liveFilter func(method int32, pc int, slot int32) bool

	rng        uint64
	cost       Cost
	maxSteps   int64
	steps      int64
	gcInterval int64
	lastDeep   int64

	budgets       Budgets
	budgetsActive bool
	started       time.Time

	pendingMinor bool
	inGC         bool
	barriers     []int
	halted       bool
	haltErr      error
	lastResult   heap.Value
	hasResult    bool
}

// New creates a VM for the program. The program must verify.
func New(prog *bytecode.Program, cfg Config) (*VM, error) {
	if cfg.HeapCapacity <= 0 {
		cfg.HeapCapacity = DefaultHeapCapacity
	}
	if cfg.NurserySize <= 0 {
		cfg.NurserySize = 4 << 20
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 4_000_000_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x9E3779B97F4A7C15
	}
	vm := &VM{
		prog:       prog,
		hp:         heap.New(cfg.HeapCapacity),
		chains:     NewChainTable(),
		listener:   cfg.Listener,
		interned:   make(map[int32]heap.Handle),
		rng:        cfg.Seed,
		maxSteps:   cfg.MaxSteps,
		gcInterval: cfg.GCInterval,
		liveFilter: cfg.LiveSlotFilter,

		budgets:       cfg.Budgets,
		budgetsActive: cfg.Budgets.active(),
	}
	if cfg.SampleRate > 0 && cfg.SampleRate < 1 {
		vm.sampler = xrand.NewSkipper(cfg.SampleRate, cfg.SampleSeed)
	}
	switch cfg.Collector {
	case "", MarkSweep:
		vm.col = gc.NewMarkSweep(vm.hp, vm)
	case MarkCompact:
		ms := gc.NewMarkSweep(vm.hp, vm)
		ms.Compact = true
		vm.col = ms
	case Generational:
		g := gc.NewGenerational(vm.hp, vm, cfg.NurserySize)
		vm.col = g
		vm.bar = g
	default:
		return nil, fmt.Errorf("vm: unknown collector %q", cfg.Collector)
	}
	if cfg.Out != nil {
		vm.out = cfg.Out
	} else {
		vm.outBuf = &bytes.Buffer{}
		vm.out = vm.outBuf
	}
	vm.statics = make([][]heap.Value, len(prog.Classes))
	vm.finalizeVIndex = make([]int32, len(prog.Classes))
	for i, c := range prog.Classes {
		slots := make([]heap.Value, c.NumStaticSlots)
		for s, isRef := range c.StaticRefSlots {
			if isRef {
				slots[s] = heap.Null
			}
		}
		vm.statics[i] = slots
		vm.finalizeVIndex[i] = -1
		for vi, name := range c.VTableNames {
			if name == "finalize" {
				vm.finalizeVIndex[i] = int32(vi)
			}
		}
	}
	return vm, nil
}

// Output returns the program output captured so far (only when Config.Out
// was nil).
func (vm *VM) Output() string {
	if vm.outBuf == nil {
		return ""
	}
	return vm.outBuf.String()
}

// CostReport returns the accumulated deterministic cost, including GC work.
func (vm *VM) CostReport() Cost {
	c := vm.cost
	c.GC = vm.col.TotalStats()
	return c
}

// Heap exposes the VM's heap (read-mostly; the profiler samples its clock).
func (vm *VM) Heap() *heap.Heap { return vm.hp }

// Collector exposes the VM's collector.
func (vm *VM) Collector() gc.Collector { return vm.col }

// Chains exposes the interned call-chain table for report rendering.
func (vm *VM) Chains() *ChainTable { return vm.chains }

// Program returns the program being executed.
func (vm *VM) Program() *bytecode.Program { return vm.prog }

// VisitRoots implements gc.Roots: frame locals and operand stacks, static
// fields, interned strings, VM temporaries and pending finalizer handles.
func (vm *VM) VisitRoots(visit func(heap.Handle)) {
	for _, f := range vm.frames {
		for i, v := range f.locals {
			if !v.IsRef {
				continue
			}
			if vm.liveFilter != nil && f.pc < len(f.m.Code) &&
				!vm.liveFilter(f.m.ID, f.pc, int32(i)) {
				continue
			}
			visit(v.H)
		}
		for _, v := range f.stack {
			if v.IsRef {
				visit(v.H)
			}
		}
	}
	for _, slots := range vm.statics {
		for _, v := range slots {
			if v.IsRef {
				visit(v.H)
			}
		}
	}
	for _, h := range vm.interned {
		visit(h)
	}
	for _, h := range vm.tempRoots {
		visit(h)
	}
	for _, h := range vm.finalizeRoots {
		visit(h)
	}
	if !vm.preallocOOM.IsNull() {
		visit(vm.preallocOOM)
	}
}

// Run executes the program: the preallocated OutOfMemoryError, every static
// initializer in declaration order, then main. It returns an error for
// uncaught exceptions, VM faults, or step-budget exhaustion. On normal
// termination, when a GCInterval is configured a final deep GC runs so the
// profiler sees end-of-run reclamation (Section 2.1.1).
func (vm *VM) Run() error {
	vm.started = time.Now()
	if oomClass, ok := vm.prog.RuntimeClasses["OutOfMemoryError"]; ok {
		h, err := vm.allocObject(oomClass, vm.prog.RuntimeSites["OutOfMemoryError"], true)
		if err != nil {
			return fmt.Errorf("vm: preallocating OutOfMemoryError: %w", err)
		}
		vm.preallocOOM = h
	}
	for _, mid := range vm.prog.StaticInits {
		if _, err := vm.callSync(vm.prog.Methods[mid], nil, -1); err != nil {
			return err
		}
	}
	_, err := vm.callSync(vm.prog.Methods[vm.prog.Main], nil, -1)
	if err == nil && vm.gcInterval > 0 {
		vm.DeepGC()
	}
	return err
}

// callSync pushes a frame for m with the given arguments and interprets
// until it returns, yielding the returned value (if any).
func (vm *VM) callSync(m *bytecode.Method, args []heap.Value, chain int32) (heap.Value, error) {
	base := len(vm.frames)
	vm.barriers = append(vm.barriers, base)
	defer func() { vm.barriers = vm.barriers[:len(vm.barriers)-1] }()
	vm.pushFrame(m, args, chain)
	for len(vm.frames) > base {
		if vm.halted {
			return heap.Value{}, vm.haltErr
		}
		vm.step()
	}
	if vm.halted {
		return heap.Value{}, vm.haltErr
	}
	res := vm.lastResult
	vm.hasResult = false
	return res, nil
}

func (vm *VM) pushFrame(m *bytecode.Method, args []heap.Value, chain int32) {
	f := &frame{
		m:      m,
		locals: make([]heap.Value, m.MaxLocals),
		chain:  chain,
	}
	copy(f.locals, args)
	vm.frames = append(vm.frames, f)
}

func (vm *VM) top() *frame { return vm.frames[len(vm.frames)-1] }

// regionMaxEntries bounds per-frame region bookkeeping. Registration is an
// optimization, never a requirement — an unregistered object simply stays
// with the collector, exactly as before the optimizer ran — so overflowing
// frames degrade gracefully instead of growing without bound.
const regionMaxEntries = 1 << 16

// noteRegion registers a fresh allocation in the frame's region.
func (vm *VM) noteRegion(f *frame, h heap.Handle) {
	if len(f.region) >= regionMaxEntries {
		return
	}
	f.region = append(f.region, regionEntry{h: h, id: vm.hp.Get(h).AllocID})
}

// popFrame discards the top frame and reclaims its region wholesale, in
// reverse allocation order. Every frame exit — normal return or exception
// unwinding — funnels through here.
func (vm *VM) popFrame() {
	f := vm.frames[len(vm.frames)-1]
	vm.frames = vm.frames[:len(vm.frames)-1]
	if len(f.region) == 0 {
		return
	}
	obs, _ := vm.col.(gc.FreeObserver)
	for i := len(f.region) - 1; i >= 0; i-- {
		e := f.region[i]
		o := vm.hp.FreeIfID(e.h, e.id)
		if o == nil {
			continue
		}
		if obs != nil {
			obs.NoteFree(e.h, o)
		}
		vm.cost.RegionFrees++
		vm.cost.RegionFreedBytes += o.Size
	}
	f.region = nil
}

// fatal halts the VM with an unrecoverable error.
func (vm *VM) fatal(format string, args ...any) {
	vm.halted = true
	vm.haltErr = fmt.Errorf("vm: %s", fmt.Sprintf(format, args...))
}

// ErrStepBudget reports MaxSteps exhaustion.
var ErrStepBudget = errors.New("vm: step budget exhausted (possible non-termination)")

func (vm *VM) step() {
	f := vm.top()
	vm.steps++
	vm.cost.Instructions++
	if vm.steps > vm.maxSteps {
		vm.halted = true
		vm.haltErr = ErrStepBudget
		return
	}
	f.lastpc = f.pc
	in := f.m.Code[f.pc]
	f.pc++
	vm.exec(f, in)
	if vm.halted {
		return
	}
	// Safepoint: deferred collections run only between instructions,
	// when every live reference is rooted in a frame. Nested triggers
	// are suppressed while a collection (or its finalizers) is running.
	if vm.inGC {
		return
	}
	if vm.pendingMinor {
		vm.pendingMinor = false
		vm.inGC = true
		vm.col.Collect(false)
		vm.runPendingFinalizers()
		vm.inGC = false
	}
	if vm.gcInterval > 0 && vm.hp.Clock()-vm.lastDeep >= vm.gcInterval {
		vm.lastDeep = vm.hp.Clock()
		vm.DeepGC()
	}
	if vm.budgetsActive {
		vm.checkBudgets()
	}
}

// DeepGC performs the paper's deep collection: collect, run finalizers,
// collect again.
func (vm *VM) DeepGC() {
	if vm.inGC {
		return
	}
	vm.inGC = true
	vm.col.Collect(true)
	vm.runPendingFinalizers()
	vm.col.Collect(true)
	vm.inGC = false
}

// runPendingFinalizers drains the collector's finalization queue and runs
// finalize() on each object; exceptions escaping a finalizer are discarded,
// as in Java.
func (vm *VM) runPendingFinalizers() {
	q := vm.col.DrainFinalizers()
	if len(q) == 0 {
		return
	}
	vm.finalizeRoots = append(vm.finalizeRoots, q...)
	for _, h := range q {
		o := vm.hp.Lookup(h)
		if o == nil || o.Class < 0 {
			continue
		}
		vi := vm.finalizeVIndex[o.Class]
		if vi < 0 {
			continue
		}
		m := vm.prog.Methods[vm.prog.Classes[o.Class].VTable[vi]]
		vm.emitUse(h, o, UseInvoke, 0)
		saveHalt, saveErr := vm.halted, vm.haltErr
		_, err := vm.callSync(m, []heap.Value{heap.RefValue(h)}, -1)
		if err != nil && !vm.halted {
			_ = err // exception swallowed
		}
		if vm.halted && errors.Is(vm.haltErr, errUncaught) {
			// Finalizer exceptions are ignored.
			vm.halted, vm.haltErr = saveHalt, saveErr
		}
	}
	vm.finalizeRoots = vm.finalizeRoots[:0]
}

var errUncaught = errors.New("uncaught exception")

// Allocation.

// allocObject allocates an instance of class, retrying after a full
// collection, and falls back to throwing OutOfMemoryError via the caller
// (returning heap.ErrHeapFull) when memory is truly exhausted.
func (vm *VM) allocObject(class int32, site int32, interned bool) (heap.Handle, error) {
	c := vm.prog.Classes[class]
	h, err := vm.hp.AllocObject(class, int(c.NumFieldSlots), c.RefSlots, c.Finalizable)
	if err != nil {
		vm.collectForSpace()
		h, err = vm.hp.AllocObject(class, int(c.NumFieldSlots), c.RefSlots, c.Finalizable)
		if err != nil {
			return 0, err
		}
	}
	vm.noteAlloc(h, site, interned)
	return h, nil
}

func (vm *VM) allocArray(elem bytecode.ElemKind, length int, site int32, interned bool) (heap.Handle, error) {
	h, err := vm.hp.AllocArray(elem, length)
	if err != nil {
		vm.collectForSpace()
		h, err = vm.hp.AllocArray(elem, length)
		if err != nil {
			return 0, err
		}
	}
	vm.noteAlloc(h, site, interned)
	return h, nil
}

func (vm *VM) collectForSpace() {
	wasInGC := vm.inGC
	vm.inGC = true
	vm.col.Collect(true)
	vm.runPendingFinalizers()
	vm.col.Collect(true)
	vm.inGC = wasInGC
}

func (vm *VM) noteAlloc(h heap.Handle, site int32, interned bool) {
	o := vm.hp.Get(h)
	o.Interned = interned
	vm.col.NoteAlloc(h, o)
	vm.cost.Allocations++
	vm.cost.AllocBytes += o.Size
	if g, ok := vm.col.(*gc.Generational); ok && g.NurseryFull() {
		vm.pendingMinor = true
	}
	if vm.listener != nil {
		if vm.sampler != nil {
			// Byte-weighted sampling: count the object's bytes down; an
			// unsampled object pays this compare-and-subtract and nothing
			// else (no chain interning, no listener call, no trailer).
			if !vm.sampler.Take(o.Size) {
				return
			}
			o.Sampled = true
		}
		chain := int32(-1)
		if len(vm.frames) > 0 {
			f := vm.top()
			chain = vm.chains.Intern(f.chain, f.m.ID, vm.curLine())
		}
		vm.listener.Alloc(h, o, site, chain, vm.hp.Clock())
	}
}

func (vm *VM) curLine() int32 {
	if len(vm.frames) == 0 {
		return 0
	}
	f := vm.top()
	return f.m.Code[f.lastpc].Line
}

func (vm *VM) emitUse(h heap.Handle, o *heap.Object, kind UseKind, _ int32) {
	if vm.listener == nil || h.IsNull() {
		return
	}
	if o == nil {
		o = vm.hp.Lookup(h)
		if o == nil {
			return
		}
	}
	if vm.sampler != nil && !o.Sampled {
		return
	}
	chain := int32(-1)
	if len(vm.frames) > 0 {
		f := vm.top()
		chain = vm.chains.Intern(f.chain, f.m.ID, vm.curLine())
	}
	vm.listener.Use(h, o, chain, vm.hp.Clock(), kind)
}

// Exceptions.

// throwByName raises one of the VM's runtime exceptions (NPE, bounds, ...).
func (vm *VM) throwByName(name string, detail string) {
	class, ok := vm.prog.RuntimeClasses[name]
	if !ok {
		vm.fatal("%s: %s (class %s not declared; include the runtime library)", name, detail, name)
		return
	}
	h, err := vm.allocObject(class, vm.prog.RuntimeSites[name], false)
	if err != nil {
		vm.throwOOM()
		return
	}
	vm.throwHandle(h)
}

func (vm *VM) throwOOM() {
	if vm.preallocOOM.IsNull() {
		vm.fatal("out of memory (no OutOfMemoryError class declared)")
		return
	}
	vm.throwHandle(vm.preallocOOM)
}

// throwHandle unwinds frames looking for a matching handler; the operand
// stack of the catching frame is cleared and the exception pushed.
func (vm *VM) throwHandle(exc heap.Handle) {
	o := vm.hp.Lookup(exc)
	excClass := int32(-1)
	if o != nil {
		excClass = o.Class
	}
	barrier := 0
	if len(vm.barriers) > 0 {
		barrier = vm.barriers[len(vm.barriers)-1]
	}
	for len(vm.frames) > barrier {
		f := vm.top()
		pc := int32(f.lastpc)
		for _, ex := range f.m.Exceptions {
			if pc < ex.From || pc >= ex.To {
				continue
			}
			if ex.CatchClass >= 0 && (excClass < 0 || !vm.prog.IsSubclass(excClass, ex.CatchClass)) {
				continue
			}
			f.stack = f.stack[:0]
			f.push(heap.RefValue(exc))
			f.pc = int(ex.Handler)
			return
		}
		vm.popFrame()
	}
	name := "<unknown>"
	if excClass >= 0 {
		name = vm.prog.Classes[excClass].Name
	}
	msg := vm.throwableMessage(exc)
	vm.halted = true
	if msg != "" {
		vm.haltErr = fmt.Errorf("%w: %s: %s", errUncaught, name, msg)
	} else {
		vm.haltErr = fmt.Errorf("%w: %s", errUncaught, name)
	}
}

// throwableMessage extracts the String field named "message" from an
// exception object, if present.
func (vm *VM) throwableMessage(exc heap.Handle) string {
	o := vm.hp.Lookup(exc)
	if o == nil || o.Class < 0 {
		return ""
	}
	for cid := o.Class; cid >= 0; cid = vm.prog.Classes[cid].Super {
		for _, fd := range vm.prog.Classes[cid].Fields {
			if fd.Name == "message" && !fd.Static && fd.Ref {
				v := o.Slots[fd.Slot]
				if v.IsRef && !v.H.IsNull() {
					return vm.StringValue(v.H)
				}
				return ""
			}
		}
	}
	return ""
}

// StringValue reads a String object's characters as a Go string. It returns
// "" for nulls and non-String objects.
func (vm *VM) StringValue(h heap.Handle) string {
	o := vm.hp.Lookup(h)
	if o == nil || vm.prog.StringChars < 0 || o.Kind != heap.KindObject {
		return ""
	}
	cv := o.Get(int(vm.prog.StringChars))
	if !cv.IsRef || cv.H.IsNull() {
		return ""
	}
	arr := vm.hp.Lookup(cv.H)
	if arr == nil {
		return ""
	}
	buf := make([]byte, arr.Len())
	for i := range buf {
		buf[i] = byte(arr.Get(i).I)
	}
	return string(buf)
}

// makeString materializes a String object over a fresh char array.
func (vm *VM) makeString(s string, site int32, interned bool) (heap.Handle, error) {
	if vm.prog.StringClass < 0 || vm.prog.StringChars < 0 {
		return 0, errors.New("program has no String class with a chars field")
	}
	arr, err := vm.allocArray(bytecode.ElemChar, len(s), site, interned)
	if err != nil {
		return 0, err
	}
	vm.tempRoots = append(vm.tempRoots, arr)
	defer func() { vm.tempRoots = vm.tempRoots[:len(vm.tempRoots)-1] }()
	ao := vm.hp.Get(arr)
	ao.Materialize()
	for i := 0; i < len(s); i++ {
		ao.Slots[i] = heap.IntValue(int64(s[i]))
	}
	str, err := vm.allocObject(vm.prog.StringClass, site, interned)
	if err != nil {
		return 0, err
	}
	so := vm.hp.Get(str)
	so.Slots[vm.prog.StringChars] = heap.RefValue(arr)
	return str, nil
}

// internedString returns the cached String for pool index idx, creating it
// on first use. Interned strings model the constant pool: the profiler
// excludes them, as the paper excludes constant-pool strings.
func (vm *VM) internedString(idx int32) (heap.Handle, error) {
	if h, ok := vm.interned[idx]; ok {
		return h, nil
	}
	h, err := vm.makeString(vm.prog.Strings[idx], -1, true)
	if err != nil {
		return 0, err
	}
	vm.interned[idx] = h
	return h, nil
}

func (vm *VM) nextRand() uint64 {
	x := vm.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	vm.rng = x
	return x
}
