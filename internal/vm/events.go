// Package vm implements the dragprof virtual machine: a stack-machine
// interpreter over the managed heap that raises the profiling events the
// paper's instrumented JVM raises — object creation with its nested
// allocation site, and object use on getfield, putfield, method invocation,
// monitor entry/exit, array access and native handle dereference.
package vm

import (
	"fmt"

	"dragprof/internal/bytecode"
	"dragprof/internal/heap"
)

// UseKind classifies the event that used an object, mirroring the five use
// categories of Section 2.1.1.
type UseKind uint8

// Use kinds.
const (
	// UseGetField is a field read.
	UseGetField UseKind = iota
	// UsePutField is a field write.
	UsePutField
	// UseInvoke is a method invocation on the object.
	UseInvoke
	// UseMonitor is monitor entry or exit.
	UseMonitor
	// UseArray is an array element load/store or length query.
	UseArray
	// UseNative is a handle dereference by native (builtin) code.
	UseNative
)

// String returns a short name for the use kind.
func (k UseKind) String() string {
	switch k {
	case UseGetField:
		return "getfield"
	case UsePutField:
		return "putfield"
	case UseInvoke:
		return "invoke"
	case UseMonitor:
		return "monitor"
	case UseArray:
		return "array"
	case UseNative:
		return "native"
	}
	return "use?"
}

// Listener observes allocation and use events. The profiler implements it;
// a nil listener disables event dispatch entirely.
type Listener interface {
	// Alloc reports a new object. site is the static allocation site,
	// chain the interned nested allocation site (call chain), clock the
	// allocation clock in bytes after this allocation.
	Alloc(h heap.Handle, o *heap.Object, site int32, chain int32, clock int64)
	// Use reports a use of object h at the given nested site.
	Use(h heap.Handle, o *heap.Object, chain int32, clock int64, kind UseKind)
}

// ChainNode is one element of an interned call-site chain: the parent chain
// plus the (method, line) program point. Chain id -1 is the empty chain.
type ChainNode struct {
	Parent int32
	Method int32
	Line   int32
}

// ChainTable interns call-site chains as a trie, so a chain is identified by
// a single int32. The VM extends the current frame's chain by one node per
// call, allocation, or use event.
type ChainTable struct {
	nodes []ChainNode
	index map[ChainNode]int32
}

// NewChainTable returns an empty chain table.
func NewChainTable() *ChainTable {
	return &ChainTable{index: make(map[ChainNode]int32)}
}

// Intern returns the id of parent extended with (method, line).
func (t *ChainTable) Intern(parent, method, line int32) int32 {
	n := ChainNode{Parent: parent, Method: method, Line: line}
	if id, ok := t.index[n]; ok {
		return id
	}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	t.index[n] = id
	return id
}

// Node returns the chain node for id.
func (t *ChainTable) Node(id int32) ChainNode { return t.nodes[id] }

// Nodes returns the interned nodes, indexed by chain id. The slice is
// shared; callers must not mutate it.
func (t *ChainTable) Nodes() []ChainNode { return t.nodes }

// Len returns the number of interned nodes.
func (t *ChainTable) Len() int { return len(t.nodes) }

// Expand returns the chain as (method, line) pairs from outermost call to
// the innermost program point. id -1 yields nil.
func (t *ChainTable) Expand(id int32) []ChainNode {
	var rev []ChainNode
	for id >= 0 {
		n := t.nodes[id]
		rev = append(rev, n)
		id = n.Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Describe renders a chain as "A.f:12 > B.g:34", innermost last, truncated
// to at most depth innermost nodes (depth <= 0 means unlimited).
func (t *ChainTable) Describe(p *bytecode.Program, id int32, depth int) string {
	nodes := t.Expand(id)
	if depth > 0 && len(nodes) > depth {
		nodes = nodes[len(nodes)-depth:]
	}
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += " > "
		}
		s += fmt.Sprintf("%s:%d", methodQName(p, n.Method), n.Line)
	}
	if s == "" {
		return "<top>"
	}
	return s
}

func methodQName(p *bytecode.Program, id int32) string {
	if id < 0 || int(id) >= len(p.Methods) {
		return "vm:<runtime>"
	}
	m := p.Methods[id]
	if m.Class >= 0 {
		return p.Classes[m.Class].Name + "." + m.Name
	}
	return m.Name
}

// Suffix returns the id of the chain formed by the innermost depth nodes of
// chain id — the "level of nesting" knob of Section 2.1.1. depth <= 0
// returns id unchanged.
func (t *ChainTable) Suffix(id int32, depth int) int32 {
	if depth <= 0 || id < 0 {
		return id
	}
	nodes := t.Expand(id)
	if len(nodes) <= depth {
		return id
	}
	nodes = nodes[len(nodes)-depth:]
	out := int32(-1)
	for _, n := range nodes {
		out = t.Intern(out, n.Method, n.Line)
	}
	return out
}
