package vm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"dragprof/internal/heap"
	"dragprof/internal/mj"
	"dragprof/internal/vm"
)

func TestChainTableInterning(t *testing.T) {
	ct := vm.NewChainTable()
	a := ct.Intern(-1, 1, 10)
	b := ct.Intern(-1, 1, 10)
	if a != b {
		t.Error("identical chains not interned")
	}
	c := ct.Intern(a, 2, 20)
	d := ct.Intern(a, 2, 21)
	if c == d {
		t.Error("distinct chains merged")
	}
	if ct.Len() != 3 {
		t.Errorf("table size = %d, want 3", ct.Len())
	}
	nodes := ct.Expand(c)
	if len(nodes) != 2 || nodes[0].Method != 1 || nodes[1].Line != 20 {
		t.Errorf("expand = %+v", nodes)
	}
	if got := ct.Expand(-1); got != nil {
		t.Errorf("empty chain expands to %v", got)
	}
}

func TestChainTableSuffix(t *testing.T) {
	ct := vm.NewChainTable()
	id := int32(-1)
	for i := int32(0); i < 5; i++ {
		id = ct.Intern(id, i, i*10)
	}
	s2 := ct.Suffix(id, 2)
	nodes := ct.Expand(s2)
	if len(nodes) != 2 || nodes[0].Method != 3 || nodes[1].Method != 4 {
		t.Errorf("suffix nodes = %+v", nodes)
	}
	if ct.Suffix(id, 0) != id || ct.Suffix(id, 9) != id {
		t.Error("suffix must be identity when depth covers the chain")
	}
}

func TestChainTableInternProperty(t *testing.T) {
	// Interning is a function: equal (parent, method, line) triples give
	// equal ids, and expansion reverses interning.
	ct := vm.NewChainTable()
	f := func(ms, ls []uint8) bool {
		n := len(ms)
		if len(ls) < n {
			n = len(ls)
		}
		if n > 12 {
			n = 12
		}
		id := int32(-1)
		for i := 0; i < n; i++ {
			id = ct.Intern(id, int32(ms[i]), int32(ls[i]))
		}
		id2 := int32(-1)
		for i := 0; i < n; i++ {
			id2 = ct.Intern(id2, int32(ms[i]), int32(ls[i]))
		}
		if id != id2 {
			return false
		}
		nodes := ct.Expand(id)
		if len(nodes) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if nodes[i].Method != int32(ms[i]) || nodes[i].Line != int32(ls[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// eventCollector records every event for assertion.
type eventCollector struct {
	allocs []string
	uses   []vm.UseKind
}

func (c *eventCollector) Alloc(h heap.Handle, o *heap.Object, site int32, chain int32, clock int64) {
	c.allocs = append(c.allocs, "alloc")
}

func (c *eventCollector) Use(h heap.Handle, o *heap.Object, chain int32, clock int64, kind vm.UseKind) {
	c.uses = append(c.uses, kind)
}

func TestUseEventKinds(t *testing.T) {
	prog, _, err := mj.CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": `
class Cell {
    int v;
    int get() { return v; }
}
class Main {
    static void main() {
        Cell c = new Cell();
        c.v = 1;           // putfield
        int x = c.v;       // getfield
        int y = c.get();   // invoke (+ getfield inside)
        int[] a = new int[3];
        a[0] = x + y;      // array store
        int z = a[0];      // array load
        int n = a.length;  // array length
        synchronized (c) { // monitor enter/exit
            z = z + n;
        }
        printInt(z);
        println("done");   // native handle dereference
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	col := &eventCollector{}
	m, err := vm.New(prog, vm.Config{Listener: col})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[vm.UseKind]int{}
	for _, k := range col.uses {
		counts[k]++
	}
	// Every use category of Section 2.1.1 must appear.
	for _, k := range []vm.UseKind{vm.UseGetField, vm.UsePutField, vm.UseInvoke,
		vm.UseMonitor, vm.UseArray, vm.UseNative} {
		if counts[k] == 0 {
			t.Errorf("no %v events recorded (counts: %v)", k, counts)
		}
	}
	if counts[vm.UseMonitor] != 2 {
		t.Errorf("monitor events = %d, want 2 (enter+exit)", counts[vm.UseMonitor])
	}
	if len(col.allocs) == 0 {
		t.Error("no allocation events")
	}
}

func TestUseKindStrings(t *testing.T) {
	for k := vm.UseGetField; k <= vm.UseNative; k++ {
		if strings.Contains(k.String(), "?") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestChainDescribe(t *testing.T) {
	prog, _, err := mj.CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": `
class Main {
    static void inner() {
        int[] a = new int[10];
        a[0] = 1;
    }
    static void outer() { inner(); }
    static void main() { outer(); }
}`})
	if err != nil {
		t.Fatal(err)
	}
	var gotChain int32 = -1
	lst := &chainGrabber{}
	m, err := vm.New(prog, vm.Config{Listener: lst})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	gotChain = lst.lastChain
	desc := m.Chains().Describe(prog, gotChain, 0)
	if !strings.Contains(desc, "Main.main") || !strings.Contains(desc, "Main.outer") ||
		!strings.Contains(desc, "Main.inner") {
		t.Errorf("chain = %q, want main > outer > inner", desc)
	}
	short := m.Chains().Describe(prog, gotChain, 1)
	if strings.Contains(short, "Main.main") {
		t.Errorf("depth-1 chain still shows the caller: %q", short)
	}
}

type chainGrabber struct {
	lastChain int32
}

func (g *chainGrabber) Alloc(h heap.Handle, o *heap.Object, site int32, chain int32, clock int64) {
	if o.Kind == heap.KindArray {
		g.lastChain = chain
	}
}

func (g *chainGrabber) Use(heap.Handle, *heap.Object, int32, int64, vm.UseKind) {}
