package vm

import (
	"context"
	"fmt"
	"time"
)

// Budgets bound a run's resource consumption; zero fields are unlimited.
// When a budget is exhausted the VM halts with a *BudgetError instead of
// running on — and because halting is an ordinary (if early) exit, the
// profiler still flushes trailers for every live object, generalizing the
// paper's program-exit flush to any exit.
type Budgets struct {
	// AllocBytes bounds the total bytes allocated (the profiler's clock).
	// Deterministic: a run aborts at the same allocation every time.
	AllocBytes int64
	// HeapLiveBytes bounds the live heap: when the heap exceeds it at a
	// safepoint, a full collection runs first, and only a still-over
	// budget heap aborts. Deterministic for a fixed program.
	HeapLiveBytes int64
	// WallClock bounds elapsed real time, polled every budgetPollSteps
	// instructions. Inherently nondeterministic; meant for runaway runs.
	WallClock time.Duration
	// Context, when non-nil, aborts the run on cancellation (polled with
	// the wall clock).
	Context context.Context
}

func (b Budgets) active() bool {
	return b.AllocBytes > 0 || b.HeapLiveBytes > 0 || b.WallClock > 0 || b.Context != nil
}

// budgetPollSteps is the wall-clock/context polling cadence in executed
// instructions: frequent enough to abort promptly, cheap enough to vanish
// in the interpreter loop.
const budgetPollSteps = 1024

// BudgetKind names the exhausted resource.
type BudgetKind string

// Budget kinds.
const (
	// BudgetAllocBytes: the allocation-byte budget ran out.
	BudgetAllocBytes BudgetKind = "alloc-bytes"
	// BudgetHeapLive: the live heap stayed over budget after a full
	// collection.
	BudgetHeapLive BudgetKind = "heap-live-bytes"
	// BudgetWallClock: the wall-clock budget ran out.
	BudgetWallClock BudgetKind = "wall-clock"
	// BudgetCanceled: the run's context was canceled.
	BudgetCanceled BudgetKind = "canceled"
)

// BudgetError reports a resource-budget abort. The run is not a failure:
// the VM halts at a safepoint with every live reference rooted, so
// profiling listeners see a consistent final heap.
type BudgetError struct {
	// Kind names the exhausted resource.
	Kind BudgetKind
	// Limit and Used quantify the budget (bytes for alloc/heap,
	// nanoseconds for wall-clock; zero for cancellation).
	Limit, Used int64
	// Cause carries the context error for BudgetCanceled.
	Cause error
}

func (e *BudgetError) Error() string {
	switch e.Kind {
	case BudgetWallClock:
		return fmt.Sprintf("vm: wall-clock budget exhausted: ran %v of %v",
			time.Duration(e.Used), time.Duration(e.Limit))
	case BudgetCanceled:
		return fmt.Sprintf("vm: run canceled: %v", e.Cause)
	default:
		return fmt.Sprintf("vm: %s budget exhausted: used %d of %d bytes", e.Kind, e.Used, e.Limit)
	}
}

func (e *BudgetError) Unwrap() error { return e.Cause }

// checkBudgets enforces the run budgets at a safepoint; it halts the VM
// with a *BudgetError when one is exhausted.
func (vm *VM) checkBudgets() {
	b := &vm.budgets
	if b.AllocBytes > 0 && vm.cost.AllocBytes > b.AllocBytes {
		vm.haltBudget(&BudgetError{Kind: BudgetAllocBytes, Limit: b.AllocBytes, Used: vm.cost.AllocBytes})
		return
	}
	if b.HeapLiveBytes > 0 && vm.hp.Used() > b.HeapLiveBytes {
		// The raw heap includes garbage; only a post-collection heap
		// proves the budget is really exceeded.
		vm.DeepGC()
		if vm.hp.Used() > b.HeapLiveBytes {
			vm.haltBudget(&BudgetError{Kind: BudgetHeapLive, Limit: b.HeapLiveBytes, Used: vm.hp.Used()})
			return
		}
	}
	if vm.steps%budgetPollSteps != 0 {
		return
	}
	if b.Context != nil {
		if err := b.Context.Err(); err != nil {
			vm.haltBudget(&BudgetError{Kind: BudgetCanceled, Cause: err})
			return
		}
	}
	if b.WallClock > 0 {
		if elapsed := time.Since(vm.started); elapsed > b.WallClock {
			vm.haltBudget(&BudgetError{Kind: BudgetWallClock, Limit: int64(b.WallClock), Used: int64(elapsed)})
		}
	}
}

func (vm *VM) haltBudget(err *BudgetError) {
	vm.halted = true
	vm.haltErr = err
}
