package vm_test

import (
	"strings"
	"testing"

	"dragprof/internal/mj"
	"dragprof/internal/vm"
)

// run compiles src (with the stdlib) and executes it, returning the
// program's output.
func run(t *testing.T, src string) string {
	t.Helper()
	prog, _, err := mj.CompileWithStdlib([]string{"test.mj"}, map[string]string{"test.mj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, m.Output())
	}
	return m.Output()
}

// runErr compiles and runs src, expecting a runtime error containing want.
func runErr(t *testing.T, src, want string) {
	t.Helper()
	prog, _, err := mj.CompileWithStdlib([]string{"test.mj"}, map[string]string{"test.mj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	err = m.Run()
	if err == nil {
		t.Fatalf("expected error containing %q, got success; output:\n%s", want, m.Output())
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("expected error containing %q, got %v", want, err)
	}
}

func TestHelloWorld(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        println("hello, world");
    }
}`)
	if out != "hello, world\n" {
		t.Errorf("output = %q, want %q", out, "hello, world\n")
	}
}

func TestArithmeticAndLoops(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int sum = 0;
        for (int i = 1; i <= 10; i = i + 1) {
            sum = sum + i;
        }
        printInt(sum);
        printInt(17 / 5);
        printInt(17 % 5);
        printInt(-sum);
    }
}`)
	want := "55\n3\n2\n-55\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestVirtualDispatch(t *testing.T) {
	out := run(t, `
class Shape {
    int area() { return 0; }
    String name() { return "shape"; }
}
class Square extends Shape {
    int side;
    Square(int s) { side = s; }
    int area() { return side * side; }
    String name() { return "square"; }
}
class Rect extends Square {
    int h;
    Rect(int w, int hh) { side = w; h = hh; }
    int area() { return side * h; }
}
class Main {
    static void main() {
        Shape[] shapes = new Shape[3];
        shapes[0] = new Shape();
        shapes[1] = new Square(4);
        shapes[2] = new Rect(3, 5);
        int total = 0;
        for (int i = 0; i < shapes.length; i = i + 1) {
            total = total + shapes[i].area();
        }
        printInt(total);
        println(shapes[1].name());
        println(shapes[2].name());
    }
}`)
	want := "31\nsquare\nsquare\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFieldsAndStatics(t *testing.T) {
	out := run(t, `
class Counter {
    static int total = 100;
    int n;
    void bump() { n = n + 1; Counter.total = Counter.total + 1; }
}
class Main {
    static void main() {
        Counter a = new Counter();
        Counter b = new Counter();
        a.bump(); a.bump(); b.bump();
        printInt(a.n);
        printInt(b.n);
        printInt(Counter.total);
    }
}`)
	want := "2\n1\n103\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestExceptionsTryCatch(t *testing.T) {
	out := run(t, `
class Main {
    static int divide(int a, int b) {
        return a / b;
    }
    static void main() {
        try {
            printInt(divide(10, 0));
        } catch (ArithmeticException e) {
            println("caught arithmetic");
        }
        try {
            int[] a = new int[3];
            a[5] = 1;
        } catch (IndexOutOfBoundsException e) {
            println("caught bounds");
        }
        try {
            String s = null;
            printInt(s.length());
        } catch (NullPointerException e) {
            println("caught npe");
        }
        try {
            throw new RuntimeException("custom");
        } catch (RuntimeException e) {
            println(e.getMessage());
        }
        println("done");
    }
}`)
	want := "caught arithmetic\ncaught bounds\ncaught npe\ncustom\ndone\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestUncaughtException(t *testing.T) {
	runErr(t, `
class Main {
    static void main() {
        throw new RuntimeException("boom");
    }
}`, "boom")
}

func TestCatchSubclassing(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        try {
            throw new NullPointerException("sub");
        } catch (RuntimeException e) {
            println("caught as super");
        }
        try {
            throw new Error("err");
        } catch (Throwable e) {
            println(e.getMessage());
        }
    }
}`)
	want := "caught as super\nerr\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestStringsAndBuiltins(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        String a = "abc";
        String b = "abc";
        String c = "abd";
        if (a.equals(b)) { println("eq"); }
        if (!a.equals(c)) { println("ne"); }
        printInt(a.length());
        printInt(a.charAt(1));
        if (hash(a) == hash(b)) { println("same hash"); }
    }
}`)
	want := "eq\nne\n3\n98\nsame hash\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestGCReclaimsGarbage(t *testing.T) {
	// Allocate far more than the heap capacity in dead objects; the VM
	// must collect and finish.
	out := run(t, `
class Node {
    int[] payload;
    Node() { payload = new int[1000]; }
}
class Main {
    static void main() {
        for (int i = 0; i < 100000; i = i + 1) {
            Node n = new Node();
            n.payload[0] = i;
        }
        println("survived");
    }
}`)
	if out != "survived\n" {
		t.Errorf("output = %q", out)
	}
}

func TestOutOfMemoryCaught(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int[][] keep = new int[1000000][];
        try {
            for (int i = 0; i < 1000000; i = i + 1) {
                keep[i] = new int[10000];
            }
            println("no oom");
        } catch (OutOfMemoryError e) {
            println("caught oom");
        }
    }
}`)
	if out != "caught oom\n" {
		t.Errorf("output = %q, want caught oom", out)
	}
}

func TestSynchronizedBlocks(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        Object lock = new Object();
        int x = 0;
        synchronized (lock) {
            x = x + 1;
            synchronized (lock) {
                x = x + 1;
            }
        }
        printInt(x);
        try {
            synchronized (lock) {
                throw new RuntimeException("inside");
            }
        } catch (RuntimeException e) {
            println("monitor released");
        }
    }
}`)
	want := "2\nmonitor released\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFinalizers(t *testing.T) {
	// spawn() confines the reference to a frame that is gone by gc()
	// time; a loop-local would stay reachable through its stale frame
	// slot — the very dead-reference effect the paper profiles.
	out := run(t, `
class Watched {
    static int finalized = 0;
    void finalize() { Watched.finalized = Watched.finalized + 1; }
}
class Main {
    static void spawn() {
        Watched w = new Watched();
    }
    static void main() {
        for (int i = 0; i < 10; i = i + 1) {
            spawn();
        }
        gc();
        gc();
        printInt(Watched.finalized);
    }
}`)
	if out != "10\n" {
		t.Errorf("output = %q, want 10 finalizations", out)
	}
}

func TestRandomDeterministic(t *testing.T) {
	src := `
class Main {
    static void main() {
        seedRandom(42);
        int sum = 0;
        for (int i = 0; i < 100; i = i + 1) {
            sum = sum + random(1000);
        }
        printInt(sum);
    }
}`
	a := run(t, src)
	b := run(t, src)
	if a != b {
		t.Errorf("nondeterministic random: %q vs %q", a, b)
	}
}

func TestArrayCopy(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int[] src = new int[5];
        for (int i = 0; i < 5; i = i + 1) { src[i] = i * 10; }
        int[] dst = new int[5];
        arraycopy(src, 1, dst, 0, 3);
        printInt(dst[0]);
        printInt(dst[2]);
        try {
            arraycopy(src, 3, dst, 0, 4);
        } catch (IndexOutOfBoundsException e) {
            println("bounds checked");
        }
    }
}`)
	want := "10\n30\nbounds checked\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestBreakContinue(t *testing.T) {
	out := run(t, `
class Main {
    static void main() {
        int sum = 0;
        for (int i = 0; i < 100; i = i + 1) {
            if (i % 2 == 0) { continue; }
            if (i > 10) { break; }
            sum = sum + i;
        }
        printInt(sum);
        int n = 0;
        while (true) {
            n = n + 1;
            if (n == 7) { break; }
        }
        printInt(n);
    }
}`)
	want := "25\n7\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestWhileAndRecursion(t *testing.T) {
	out := run(t, `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() {
        printInt(fib(20));
    }
}`)
	if out != "6765\n" {
		t.Errorf("output = %q, want 6765", out)
	}
}

func TestCollectorVariants(t *testing.T) {
	src := `
class Cell {
    Cell next;
    int[] pad;
    Cell(Cell n) { next = n; pad = new int[100]; }
}
class Main {
    static void main() {
        Cell head = null;
        int checksum = 0;
        for (int round = 0; round < 50; round = round + 1) {
            head = null;
            for (int i = 0; i < 500; i = i + 1) {
                head = new Cell(head);
                head.pad[0] = i;
            }
            Cell c = head;
            while (c != null) {
                checksum = checksum + c.pad[0];
                c = c.next;
            }
        }
        printInt(checksum);
    }
}`
	var outputs []string
	for _, kind := range []vm.CollectorKind{vm.MarkSweep, vm.MarkCompact, vm.Generational} {
		prog, _, err := mj.CompileWithStdlib([]string{"test.mj"}, map[string]string{"test.mj": src})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		m, err := vm.New(prog, vm.Config{Collector: kind, HeapCapacity: 8 << 20, NurserySize: 512 << 10})
		if err != nil {
			t.Fatalf("vm.New(%s): %v", kind, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("run with %s: %v", kind, err)
		}
		outputs = append(outputs, m.Output())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Errorf("collector output diverges: %q vs %q", outputs[0], outputs[i])
		}
	}
}

func TestStepBudget(t *testing.T) {
	prog, _, err := mj.CompileWithStdlib([]string{"test.mj"}, map[string]string{"test.mj": `
class Main {
    static void main() {
        while (true) { }
    }
}`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, vm.Config{MaxSteps: 10000})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if err := m.Run(); err == nil {
		t.Fatal("expected step-budget error")
	}
}

func TestCostReportMonotone(t *testing.T) {
	prog, _, err := mj.CompileWithStdlib([]string{"test.mj"}, map[string]string{"test.mj": `
class Main {
    static void main() {
        int[] a = new int[100];
        for (int i = 0; i < 100; i = i + 1) { a[i] = i; }
    }
}`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := m.CostReport()
	if c.Instructions == 0 || c.Allocations == 0 || c.AllocBytes == 0 {
		t.Errorf("cost report has zero fields: %+v", c)
	}
	if c.RuntimeUnits() <= c.Instructions {
		t.Errorf("runtime units %d should exceed instruction count %d", c.RuntimeUnits(), c.Instructions)
	}
}

func TestStaticInitializers(t *testing.T) {
	out := run(t, `
class Config {
    static int limit = 10 * 5;
    static String name = "cfg";
}
class Main {
    static void main() {
        printInt(Config.limit);
        println(Config.name);
    }
}`)
	want := "50\ncfg\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}
