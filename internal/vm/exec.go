package vm

import (
	"fmt"

	"dragprof/internal/bytecode"
	"dragprof/internal/heap"
)

// exec interprets one instruction of frame f.
func (vm *VM) exec(f *frame, in bytecode.Instr) {
	switch in.Op {
	case bytecode.Nop:

	case bytecode.ConstInt, bytecode.ConstChar:
		f.push(heap.IntValue(int64(in.A)))
	case bytecode.ConstBool:
		f.push(heap.IntValue(int64(in.A)))
	case bytecode.ConstNull:
		f.push(heap.Null)
	case bytecode.ConstStr:
		h, err := vm.internedString(in.A)
		if err != nil {
			vm.fatal("string literal: %v", err)
			return
		}
		f.push(heap.RefValue(h))

	case bytecode.LoadLocal:
		f.push(f.locals[in.A])
	case bytecode.StoreLocal:
		f.locals[in.A] = f.pop()

	case bytecode.GetField:
		recv := f.pop()
		o := vm.deref(recv, "field read")
		if o == nil {
			return
		}
		vm.emitUse(recv.H, o, UseGetField, in.Line)
		f.push(o.Slots[in.A])
	case bytecode.PutField:
		val := f.pop()
		recv := f.pop()
		o := vm.deref(recv, "field write")
		if o == nil {
			return
		}
		vm.emitUse(recv.H, o, UsePutField, in.Line)
		o.Slots[in.A] = val
		if vm.bar != nil && val.IsRef {
			vm.bar.WriteBarrier(recv.H, val.H)
		}

	case bytecode.GetStatic:
		f.push(vm.statics[in.B][in.A])
	case bytecode.PutStatic:
		vm.statics[in.B][in.A] = f.pop()

	case bytecode.NewObject:
		h, err := vm.allocObject(in.A, in.B, false)
		if err != nil {
			vm.throwOOM()
			return
		}
		f.push(heap.RefValue(h))
	case bytecode.NewArray:
		n := f.pop().I
		if n < 0 {
			vm.throwByName("NegativeArraySizeException", fmt.Sprintf("length %d", n))
			return
		}
		h, err := vm.allocArray(bytecode.ElemKind(in.A), int(n), in.B, false)
		if err != nil {
			vm.throwOOM()
			return
		}
		f.push(heap.RefValue(h))

	case bytecode.RegionNewObject:
		h, err := vm.allocObject(in.A, in.B, false)
		if err != nil {
			vm.throwOOM()
			return
		}
		vm.noteRegion(f, h)
		f.push(heap.RefValue(h))
	case bytecode.RegionNewArray:
		n := f.pop().I
		if n < 0 {
			vm.throwByName("NegativeArraySizeException", fmt.Sprintf("length %d", n))
			return
		}
		h, err := vm.allocArray(bytecode.ElemKind(in.A), int(n), in.B, false)
		if err != nil {
			vm.throwOOM()
			return
		}
		vm.noteRegion(f, h)
		f.push(heap.RefValue(h))

	case bytecode.ArrayLoad:
		idx := f.pop().I
		arr := f.pop()
		o := vm.deref(arr, "array read")
		if o == nil {
			return
		}
		if idx < 0 || int(idx) >= o.Len() {
			vm.throwByName("IndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", idx, o.Len()))
			return
		}
		vm.emitUse(arr.H, o, UseArray, in.Line)
		f.push(o.Get(int(idx)))
	case bytecode.ArrayStore:
		val := f.pop()
		idx := f.pop().I
		arr := f.pop()
		o := vm.deref(arr, "array write")
		if o == nil {
			return
		}
		if idx < 0 || int(idx) >= o.Len() {
			vm.throwByName("IndexOutOfBoundsException", fmt.Sprintf("index %d, length %d", idx, o.Len()))
			return
		}
		vm.emitUse(arr.H, o, UseArray, in.Line)
		o.Set(int(idx), val)
		if vm.bar != nil && val.IsRef {
			vm.bar.WriteBarrier(arr.H, val.H)
		}
	case bytecode.ArrayLen:
		arr := f.pop()
		o := vm.deref(arr, "array length")
		if o == nil {
			return
		}
		vm.emitUse(arr.H, o, UseArray, in.Line)
		f.push(heap.IntValue(int64(o.Len())))

	case bytecode.InvokeVirtual:
		vm.invokeVirtual(f, in)
	case bytecode.InvokeStatic:
		m := vm.prog.Methods[in.A]
		args := vm.popArgs(f, m.NumParams)
		chain := vm.chains.Intern(f.chain, f.m.ID, in.Line)
		vm.pushFrame(m, args, chain)
	case bytecode.InvokeSpecial:
		m := vm.prog.Methods[in.A]
		args := vm.popArgs(f, m.NumParams)
		recv := args[0]
		o := vm.deref(recv, "constructor call")
		if o == nil {
			return
		}
		vm.emitUse(recv.H, o, UseInvoke, in.Line)
		chain := vm.chains.Intern(f.chain, f.m.ID, in.Line)
		vm.pushFrame(m, args, chain)
	case bytecode.CallBuiltin:
		vm.callBuiltin(f, bytecode.Builtin(in.A), in.Line)

	case bytecode.Return:
		vm.popReturn(heap.Value{}, false)
	case bytecode.ReturnValue:
		vm.popReturn(f.pop(), true)

	case bytecode.Jump:
		f.pc = int(in.A)
	case bytecode.JumpIfFalse:
		if f.pop().I == 0 {
			f.pc = int(in.A)
		}
	case bytecode.JumpIfTrue:
		if f.pop().I != 0 {
			f.pc = int(in.A)
		}
	case bytecode.JumpIfNull:
		if f.pop().H.IsNull() {
			f.pc = int(in.A)
		}
	case bytecode.JumpIfNonNull:
		if !f.pop().H.IsNull() {
			f.pc = int(in.A)
		}

	case bytecode.Add:
		b, a := f.pop().I, f.pop().I
		f.push(heap.IntValue(a + b))
	case bytecode.Sub:
		b, a := f.pop().I, f.pop().I
		f.push(heap.IntValue(a - b))
	case bytecode.Mul:
		b, a := f.pop().I, f.pop().I
		f.push(heap.IntValue(a * b))
	case bytecode.Div:
		b, a := f.pop().I, f.pop().I
		if b == 0 {
			vm.throwByName("ArithmeticException", "division by zero")
			return
		}
		f.push(heap.IntValue(a / b))
	case bytecode.Rem:
		b, a := f.pop().I, f.pop().I
		if b == 0 {
			vm.throwByName("ArithmeticException", "division by zero")
			return
		}
		f.push(heap.IntValue(a % b))
	case bytecode.Neg:
		f.push(heap.IntValue(-f.pop().I))

	case bytecode.CmpEQ:
		b, a := f.pop().I, f.pop().I
		f.push(heap.BoolValue(a == b))
	case bytecode.CmpNE:
		b, a := f.pop().I, f.pop().I
		f.push(heap.BoolValue(a != b))
	case bytecode.CmpLT:
		b, a := f.pop().I, f.pop().I
		f.push(heap.BoolValue(a < b))
	case bytecode.CmpLE:
		b, a := f.pop().I, f.pop().I
		f.push(heap.BoolValue(a <= b))
	case bytecode.CmpGT:
		b, a := f.pop().I, f.pop().I
		f.push(heap.BoolValue(a > b))
	case bytecode.CmpGE:
		b, a := f.pop().I, f.pop().I
		f.push(heap.BoolValue(a >= b))
	case bytecode.RefEQ:
		b, a := f.pop().H, f.pop().H
		f.push(heap.BoolValue(a == b))
	case bytecode.RefNE:
		b, a := f.pop().H, f.pop().H
		f.push(heap.BoolValue(a != b))
	case bytecode.Not:
		f.push(heap.BoolValue(f.pop().I == 0))

	case bytecode.Dup:
		v := f.stack[len(f.stack)-1]
		f.push(v)
	case bytecode.Pop:
		f.pop()
	case bytecode.Swap:
		n := len(f.stack)
		f.stack[n-1], f.stack[n-2] = f.stack[n-2], f.stack[n-1]

	case bytecode.CheckCast:
		v := f.stack[len(f.stack)-1]
		if !v.H.IsNull() {
			o := vm.hp.Lookup(v.H)
			if o == nil || o.Class < 0 || !vm.prog.IsSubclass(o.Class, in.A) {
				f.pop()
				got := "array"
				if o != nil && o.Class >= 0 {
					got = vm.prog.Classes[o.Class].Name
				}
				vm.throwByName("ClassCastException",
					fmt.Sprintf("%s is not a %s", got, vm.prog.Classes[in.A].Name))
				return
			}
		}

	case bytecode.Throw:
		v := f.pop()
		if v.H.IsNull() {
			vm.throwByName("NullPointerException", "throw null")
			return
		}
		vm.throwHandle(v.H)

	case bytecode.MonitorEnter:
		recv := f.pop()
		o := vm.deref(recv, "monitorenter")
		if o == nil {
			return
		}
		vm.emitUse(recv.H, o, UseMonitor, in.Line)
		o.MonitorCount++
	case bytecode.MonitorExit:
		recv := f.pop()
		o := vm.deref(recv, "monitorexit")
		if o == nil {
			return
		}
		vm.emitUse(recv.H, o, UseMonitor, in.Line)
		if o.MonitorCount <= 0 {
			vm.fatal("monitorexit without matching monitorenter")
			return
		}
		o.MonitorCount--

	default:
		vm.fatal("unknown opcode %s", in.Op)
	}
}

// deref resolves a reference value, raising NullPointerException for null.
// It returns nil after raising.
func (vm *VM) deref(v heap.Value, what string) *heap.Object {
	if v.H.IsNull() {
		vm.throwByName("NullPointerException", what)
		return nil
	}
	return vm.hp.Get(v.H)
}

// popArgs pops n arguments pushed left-to-right.
func (vm *VM) popArgs(f *frame, n int) []heap.Value {
	args := make([]heap.Value, n)
	for i := n - 1; i >= 0; i-- {
		args[i] = f.pop()
	}
	return args
}

func (vm *VM) invokeVirtual(f *frame, in bytecode.Instr) {
	static := vm.prog.Classes[in.B]
	declared := vm.prog.Methods[static.VTable[in.A]]
	args := vm.popArgs(f, declared.NumParams)
	recv := args[0]
	o := vm.deref(recv, "method call")
	if o == nil {
		return
	}
	vm.emitUse(recv.H, o, UseInvoke, in.Line)
	// Dynamic dispatch through the receiver's actual class.
	m := declared
	if o.Class >= 0 && o.Class != in.B {
		dyn := vm.prog.Classes[o.Class]
		if int(in.A) < len(dyn.VTable) {
			m = vm.prog.Methods[dyn.VTable[in.A]]
		}
	}
	chain := vm.chains.Intern(f.chain, f.m.ID, in.Line)
	vm.pushFrame(m, args, chain)
}

// popReturn pops the current frame; the returned value goes to the caller's
// operand stack, or to lastResult when the popped frame was a callSync base.
func (vm *VM) popReturn(v heap.Value, hasValue bool) {
	vm.popFrame()
	barrier := 0
	if len(vm.barriers) > 0 {
		barrier = vm.barriers[len(vm.barriers)-1]
	}
	if len(vm.frames) == barrier {
		if hasValue {
			vm.lastResult = v
			vm.hasResult = true
		}
		return
	}
	if hasValue {
		vm.top().push(v)
	}
}
