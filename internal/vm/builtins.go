package vm

import (
	"fmt"

	"dragprof/internal/bytecode"
	"dragprof/internal/heap"
)

// callBuiltin dispatches a native function. Builtins that receive object
// arguments dereference their handles, which counts as a native use — the
// paper's fifth use category.
func (vm *VM) callBuiltin(f *frame, b bytecode.Builtin, line int32) {
	vm.cost.Builtins++
	switch b {
	case bytecode.BuiltinPrint, bytecode.BuiltinPrintln:
		s, ok := vm.useString(f.pop(), line)
		if !ok {
			return
		}
		if b == bytecode.BuiltinPrintln {
			fmt.Fprintln(vm.out, s)
		} else {
			fmt.Fprint(vm.out, s)
		}

	case bytecode.BuiltinPrintInt:
		fmt.Fprintln(vm.out, f.pop().I)

	case bytecode.BuiltinRandom:
		n := f.pop().I
		if n <= 0 {
			f.push(heap.IntValue(0))
			return
		}
		f.push(heap.IntValue(int64(vm.nextRand() % uint64(n))))

	case bytecode.BuiltinSeedRandom:
		v := f.pop().I
		vm.rng = uint64(v)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D

	case bytecode.BuiltinArrayCopy:
		n := f.pop().I
		dstPos := f.pop().I
		dst := f.pop()
		srcPos := f.pop().I
		src := f.pop()
		so := vm.deref(src, "arraycopy source")
		if so == nil {
			return
		}
		do := vm.deref(dst, "arraycopy destination")
		if do == nil {
			return
		}
		vm.emitUse(src.H, so, UseNative, line)
		vm.emitUse(dst.H, do, UseNative, line)
		if n < 0 || srcPos < 0 || dstPos < 0 ||
			srcPos+n > int64(so.Len()) || dstPos+n > int64(do.Len()) {
			vm.throwByName("IndexOutOfBoundsException",
				fmt.Sprintf("arraycopy src[%d:%d) of %d, dst[%d:%d) of %d",
					srcPos, srcPos+n, so.Len(), dstPos, dstPos+n, do.Len()))
			return
		}
		if so.Slots == nil && do.Slots == nil {
			// Both unmaterialized: copying zeros over zeros.
		} else {
			so.Materialize()
			do.Materialize()
			copy(do.Slots[dstPos:dstPos+n], so.Slots[srcPos:srcPos+n])
		}
		if vm.bar != nil && do.Elem == bytecode.ElemRef {
			for _, v := range do.Slots[dstPos : dstPos+n] {
				if v.IsRef {
					vm.bar.WriteBarrier(dst.H, v.H)
				}
			}
		}

	case bytecode.BuiltinStringEquals:
		sb := f.pop()
		sa := f.pop()
		a, ok := vm.useString(sa, line)
		if !ok {
			return
		}
		bs, ok := vm.useString(sb, line)
		if !ok {
			return
		}
		f.push(heap.BoolValue(a == bs))

	case bytecode.BuiltinHash:
		s, ok := vm.useString(f.pop(), line)
		if !ok {
			return
		}
		var h uint32 = 2166136261
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= 16777619
		}
		f.push(heap.IntValue(int64(h & 0x7fffffff)))

	case bytecode.BuiltinTicks:
		f.push(heap.IntValue(vm.hp.Clock()))

	case bytecode.BuiltinGC:
		vm.collectForSpace()

	case bytecode.BuiltinAbort:
		s, _ := vm.stringArg(f.pop(), line)
		vm.fatal("abort: %s", s)

	default:
		vm.fatal("unknown builtin %d", b)
	}
}

// useString reads a String argument, emitting native uses of the String and
// its char array, raising NullPointerException for null. ok is false after
// an exception was raised.
func (vm *VM) useString(v heap.Value, line int32) (string, bool) {
	o := vm.deref(v, "native string access")
	if o == nil {
		return "", false
	}
	vm.emitUse(v.H, o, UseNative, line)
	if vm.prog.StringChars >= 0 && int(vm.prog.StringChars) < o.Len() {
		cv := o.Get(int(vm.prog.StringChars))
		if cv.IsRef && !cv.H.IsNull() {
			if arr := vm.hp.Lookup(cv.H); arr != nil {
				vm.emitUse(cv.H, arr, UseNative, line)
			}
		}
	}
	return vm.StringValue(v.H), true
}

// stringArg is useString without the null exception (for abort paths).
func (vm *VM) stringArg(v heap.Value, line int32) (string, bool) {
	if v.H.IsNull() {
		return "<null>", false
	}
	o := vm.hp.Lookup(v.H)
	if o == nil {
		return "<freed>", false
	}
	vm.emitUse(v.H, o, UseNative, line)
	return vm.StringValue(v.H), true
}
