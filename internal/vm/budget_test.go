package vm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dragprof/internal/mj"
	"dragprof/internal/vm"
)

// allocLoop allocates forever: every budget must be able to stop it.
const allocLoop = `
class Main {
    static void main() {
        int i = 0;
        while (i < 100000000) {
            int[] a = new int[1024];
            a[0] = i;
            i = i + 1;
        }
    }
}`

// leakLoop allocates and retains: the live heap grows without bound.
const leakLoop = `
class Node {
    int[] data;
    Node next;
}
class Main {
    static Node keep;
    static void main() {
        int i = 0;
        while (i < 100000000) {
            Node n = new Node();
            n.data = new int[4096];
            n.next = keep;
            keep = n;
            i = i + 1;
        }
    }
}`

func compileBudget(t *testing.T, src string) *vm.VM {
	t.Helper()
	return compileBudgetCfg(t, src, vm.Config{})
}

func compileBudgetCfg(t *testing.T, src string, cfg vm.Config) *vm.VM {
	t.Helper()
	prog, _, err := mj.CompileWithStdlib([]string{"test.mj"}, map[string]string{"test.mj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	return m
}

func wantBudgetError(t *testing.T, err error, kind vm.BudgetKind) *vm.BudgetError {
	t.Helper()
	if err == nil {
		t.Fatalf("expected %s BudgetError, run succeeded", kind)
	}
	var be *vm.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected BudgetError, got %T: %v", err, err)
	}
	if be.Kind != kind {
		t.Fatalf("BudgetError kind = %s, want %s", be.Kind, kind)
	}
	return be
}

func TestAllocBytesBudget(t *testing.T) {
	m := compileBudgetCfg(t, allocLoop, vm.Config{
		Budgets: vm.Budgets{AllocBytes: 1 << 20},
	})
	be := wantBudgetError(t, m.Run(), vm.BudgetAllocBytes)
	if be.Used <= be.Limit {
		t.Errorf("Used %d should exceed Limit %d", be.Used, be.Limit)
	}
	// The abort is at the first safepoint past the budget: within one
	// allocation's worth of slack.
	if be.Used > be.Limit+(1<<14) {
		t.Errorf("abort overshot the budget: used %d of %d", be.Used, be.Limit)
	}
}

func TestAllocBudgetDeterministic(t *testing.T) {
	var used [2]int64
	for i := range used {
		m := compileBudgetCfg(t, allocLoop, vm.Config{
			Budgets: vm.Budgets{AllocBytes: 1 << 20},
		})
		be := wantBudgetError(t, m.Run(), vm.BudgetAllocBytes)
		used[i] = be.Used
	}
	if used[0] != used[1] {
		t.Errorf("alloc budget abort nondeterministic: %d vs %d", used[0], used[1])
	}
}

func TestHeapLiveBudget(t *testing.T) {
	m := compileBudgetCfg(t, leakLoop, vm.Config{
		Budgets: vm.Budgets{HeapLiveBytes: 2 << 20},
	})
	be := wantBudgetError(t, m.Run(), vm.BudgetHeapLive)
	if be.Used <= be.Limit {
		t.Errorf("Used %d should exceed Limit %d", be.Used, be.Limit)
	}
}

func TestHeapLiveBudgetSparesNonLeaks(t *testing.T) {
	// The alloc loop retains nothing: a live-heap budget far below the
	// total allocation volume must not fire.
	src := `
class Main {
    static void main() {
        int i = 0;
        while (i < 2000) {
            int[] a = new int[1024];
            a[0] = i;
            i = i + 1;
        }
        println("done");
    }
}`
	m := compileBudgetCfg(t, src, vm.Config{
		Budgets: vm.Budgets{HeapLiveBytes: 1 << 20},
	})
	if err := m.Run(); err != nil {
		t.Fatalf("non-leaking run aborted: %v", err)
	}
}

func TestWallClockBudget(t *testing.T) {
	m := compileBudgetCfg(t, allocLoop, vm.Config{
		Budgets: vm.Budgets{WallClock: 50 * time.Millisecond},
	})
	start := time.Now()
	wantBudgetError(t, m.Run(), vm.BudgetWallClock)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("wall-clock abort took %v", elapsed)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := compileBudgetCfg(t, allocLoop, vm.Config{
		Budgets: vm.Budgets{Context: ctx},
	})
	be := wantBudgetError(t, m.Run(), vm.BudgetCanceled)
	if !errors.Is(be, context.Canceled) {
		t.Errorf("BudgetError should unwrap to context.Canceled, got %v", be.Cause)
	}
}

func TestNoBudgetsNoOverhead(t *testing.T) {
	// Zero-valued budgets must leave the run untouched.
	m := compileBudget(t, `
class Main {
    static void main() { println("ok"); }
}`)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Output() != "ok\n" {
		t.Errorf("output = %q", m.Output())
	}
}
