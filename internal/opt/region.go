package opt

import (
	"fmt"

	"dragprof/internal/analysis"
	"dragprof/internal/bytecode"
)

// regionPass converts allocation sites proved method-local into
// frame-region allocations. A site qualifies when all of:
//
//   - the interprocedural escape analysis reports EscapeNone: the object
//     never reaches a caller (return), a callee's persistent state (arg),
//     a static, or a thrown exception (Throw raises EscapeGlobal);
//   - the points-to solver proves no heap location at all can hold it
//     (HeldOutside with no owner set), so cross-frame heap paths cannot
//     resurrect it;
//   - the class is not finalizable (a region free would skip the
//     finalizer; arrays never have one).
//
// The VM frees surviving region objects when the allocating frame exits —
// observationally invisible: nothing outside the frame can reach them, and
// the only program-visible effect of earlier reclamation is *more* free
// memory (Java permits arbitrarily eager collection of unreachable
// objects). Sites already converted are not allocation opcodes in the base
// view switch below, so the pass is idempotent.
func regionPass(p *bytecode.Program, res *Result) error {
	view := normalize(p)
	cg := analysis.BuildCallGraph(view)
	esc := analysis.ComputeEscape(view, cg)
	pt := analysis.SolvePointsTo(view, cg)
	for _, m := range p.Methods {
		if !cg.Reachable[m.ID] {
			continue
		}
		for pc := range m.Code {
			in := &m.Code[pc]
			var region bytecode.Op
			switch in.Op {
			case bytecode.NewObject:
				region = bytecode.RegionNewObject
			case bytecode.NewArray:
				region = bytecode.RegionNewArray
			default:
				continue
			}
			res.Stats.AllocSites++
			site := in.B
			if esc.SiteEscape(site) != analysis.EscapeNone {
				continue
			}
			if pt.HeldOutside(site, nil) {
				continue
			}
			if in.Op == bytecode.NewObject && p.Classes[in.A].Finalizable {
				continue
			}
			preHash := bytecode.MethodHash(p, m)
			in.Op = region
			res.Stats.RegionSites++
			res.Actions = append(res.Actions, action("region", p, m, preHash, pc, site,
				fmt.Sprintf("allocation site %s proved method-local (escape=none, no heap path);"+
					" region-allocated, freed wholesale at frame exit", p.SiteDesc(site))))
		}
	}
	return nil
}
