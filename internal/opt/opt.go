// Package opt is the ahead-of-time bytecode optimizer the paper's Section 5
// forecasts: the drag the profiler measures should ultimately be eliminated
// at compile time. Three passes consume the existing whole-program analyses
// and rewrite verified programs in place:
//
//   - devirt: InvokeVirtual sites that rapid type analysis proves
//     monomorphic become direct InvokeSpecial calls.
//   - region: allocation sites the interprocedural escape analysis and the
//     points-to solver prove method-local become frame-scoped region
//     allocations (RegionNewObject/RegionNewArray) that the VM frees
//     wholesale at frame exit — their drag drops to zero with no profile.
//   - dce: liveness-proved dead local stores are rewritten to null stores
//     (releasing both the stored value and the slot's previous referent),
//     availability-proved redundant null stores are deleted, and
//     dominator-reachability removes code no path executes.
//
// Every rewrite is recorded as an Action for the SARIF/report layer, and
// the pipeline re-verifies the program after each pass. The optimizer is
// idempotent: running it twice yields the same bytecode.ProgramHash as
// running it once, which cmd/dragopt checks on every workload.
package opt

import (
	"fmt"

	"dragprof/internal/bytecode"
)

// DefaultPasses is the canonical pass order. Any permutation is safe (the
// pass-ordering test runs them all); this order maximizes what later passes
// see — devirtualized calls sharpen nothing today but keep the call graph
// identical, and region conversion before DCE lets dead stores of region
// values be nulled too.
var DefaultPasses = []string{"devirt", "region", "dce"}

// Options configures an optimization run.
type Options struct {
	// Passes selects and orders the passes by name ("devirt", "region",
	// "dce"); nil or empty runs DefaultPasses.
	Passes []string
}

// Action is one per-site rewrite record, the optimizer's evidence trail.
type Action struct {
	// Pass names the pass that performed the rewrite.
	Pass string `json:"pass"`
	// Method/MethodName/MethodHash identify the rewritten method;
	// MethodHash is the content hash *before* optimization, the stable
	// anchor the SARIF fingerprints use.
	Method     int32  `json:"method"`
	MethodName string `json:"methodName"`
	MethodHash string `json:"methodHash"`
	// File and Line locate the rewrite in MiniJava source.
	File string `json:"file,omitempty"`
	Line int32  `json:"line,omitempty"`
	// PC is the instruction index at rewrite time (pre-compaction for
	// dce actions).
	PC int `json:"pc"`
	// Site is the allocation site id for region actions, -1 otherwise.
	Site int32 `json:"site"`
	// Detail says what was rewritten and why it is safe.
	Detail string `json:"detail"`
}

// Stats summarizes an optimization run.
type Stats struct {
	// VirtualSites counts InvokeVirtual instructions in reachable
	// methods before devirtualization; Devirtualized how many were
	// rewritten to direct calls.
	VirtualSites  int `json:"virtualSites"`
	Devirtualized int `json:"devirtualized"`
	// AllocSites counts allocation instructions in reachable methods
	// examined by the region pass; RegionSites how many were proved
	// method-local and converted.
	AllocSites  int `json:"allocSites"`
	RegionSites int `json:"regionSites"`
	// DeadStoresNulled counts dead StoreLocal instructions rewritten to
	// null stores; NullStoresRemoved redundant null stores deleted;
	// UnreachableRemoved unreachable instructions deleted;
	// NopsRemoved Nops compacted away (including those the other DCE
	// steps left behind).
	DeadStoresNulled   int `json:"deadStoresNulled"`
	NullStoresRemoved  int `json:"nullStoresRemoved"`
	UnreachableRemoved int `json:"unreachableRemoved"`
	NopsRemoved        int `json:"nopsRemoved"`
}

// Result is the outcome of Optimize. The input program is mutated in
// place; Result records what changed.
type Result struct {
	Program *bytecode.Program `json:"-"`
	Actions []Action          `json:"actions"`
	Stats   Stats             `json:"stats"`
	// Hash is bytecode.ProgramHash after optimization — the idempotence
	// key: optimizing the optimized program must reproduce it.
	Hash string `json:"hash"`
}

// Optimize runs the selected passes over p in place, verifying the program
// after each pass, and returns the evidence trail. The input must verify.
func Optimize(p *bytecode.Program, opts Options) (*Result, error) {
	passes := opts.Passes
	if len(passes) == 0 {
		passes = DefaultPasses
	}
	res := &Result{Program: p, Actions: []Action{}}
	for _, name := range passes {
		var err error
		switch name {
		case "devirt":
			err = devirtPass(p, res)
		case "region":
			err = regionPass(p, res)
		case "dce":
			err = dcePass(p, res)
		default:
			return nil, fmt.Errorf("opt: unknown pass %q (want devirt, region or dce)", name)
		}
		if err != nil {
			return nil, fmt.Errorf("opt: %s pass: %w", name, err)
		}
		if err := bytecode.Verify(p); err != nil {
			return nil, fmt.Errorf("opt: program broken after %s pass: %w", name, err)
		}
	}
	res.Hash = bytecode.ProgramHash(p)
	return res, nil
}

// normalize returns an analysis view of p in which the region opcodes are
// replaced by their base allocation forms (identical operand layout, pc
// stable). The whole-program analyses predate the optimizer and switch on
// base opcodes only; handing them the view keeps them untouched while the
// optimizer re-analyzes its own output (the idempotence run). When p has
// no region ops — always true on compiler output — p itself is returned.
func normalize(p *bytecode.Program) *bytecode.Program {
	hasRegion := func(m *bytecode.Method) bool {
		for _, in := range m.Code {
			if in.Op.Base() != in.Op {
				return true
			}
		}
		return false
	}
	dirty := false
	for _, m := range p.Methods {
		if hasRegion(m) {
			dirty = true
			break
		}
	}
	if !dirty {
		return p
	}
	cp := *p
	cp.Methods = make([]*bytecode.Method, len(p.Methods))
	for i, m := range p.Methods {
		if !hasRegion(m) {
			cp.Methods[i] = m
			continue
		}
		mc := *m
		mc.Code = make([]bytecode.Instr, len(m.Code))
		copy(mc.Code, m.Code)
		for j := range mc.Code {
			mc.Code[j].Op = mc.Code[j].Op.Base()
		}
		cp.Methods[i] = &mc
	}
	return &cp
}

// action builds the evidence record for a rewrite in method m at pc.
func action(pass string, p *bytecode.Program, m *bytecode.Method, preHash string, pc int, site int32, detail string) Action {
	var line int32
	if pc >= 0 && pc < len(m.Code) {
		line = m.Code[pc].Line
	}
	return Action{
		Pass:       pass,
		Method:     m.ID,
		MethodName: methodName(p, m),
		MethodHash: preHash,
		File:       sourceFile(p, m),
		Line:       line,
		PC:         pc,
		Site:       site,
		Detail:     detail,
	}
}

func methodName(p *bytecode.Program, m *bytecode.Method) string {
	if m.Class >= 0 && int(m.Class) < len(p.Classes) {
		return p.Classes[m.Class].Name + "." + m.Name
	}
	return m.Name
}

func sourceFile(p *bytecode.Program, m *bytecode.Method) string {
	if m.Class >= 0 && int(m.Class) < len(p.Classes) {
		return p.Classes[m.Class].SourceFile
	}
	return ""
}
