package opt

import (
	"fmt"

	"dragprof/internal/report"
)

// Rule ids under which optimizer actions surface in SARIF.
const (
	// RuleDevirt records a monomorphic call rewritten to a direct call.
	RuleDevirt = "devirt-applied"
	// RuleRegion records an escape-proved site converted to region
	// allocation.
	RuleRegion = "region-alloc"
	// RuleDCE records dead-store nulling, redundant-null-store removal and
	// unreachable-code deletion.
	RuleDCE = "dce-applied"
)

// Rules describes the optimizer's SARIF rule table.
func Rules() []report.RuleInfo {
	return []report.RuleInfo{
		{ID: RuleDevirt, Description: "invokevirtual site with a single RTA dispatch target rewritten to a direct call"},
		{ID: RuleRegion, Description: "escape-proved method-local allocation converted to a frame-region allocation freed at method exit"},
		{ID: RuleDCE, Description: "liveness/availability/dominator-proved dead bytecode rewritten or removed"},
	}
}

// Diagnostics renders the evidence trail as report diagnostics, one per
// action, in rewrite order. The methodHash property anchors the
// dragprof/v1 fingerprint, so baselines survive line drift.
func Diagnostics(res *Result) []report.Diagnostic {
	out := make([]report.Diagnostic, 0, len(res.Actions))
	for _, a := range res.Actions {
		var rule string
		switch a.Pass {
		case "devirt":
			rule = RuleDevirt
		case "region":
			rule = RuleRegion
		default:
			rule = RuleDCE
		}
		props := map[string]any{
			"pass":       a.Pass,
			"method":     a.MethodName,
			"methodHash": a.MethodHash,
			"pc":         a.PC,
		}
		if a.Site >= 0 {
			props["site"] = fmt.Sprintf("site#%d", a.Site)
		}
		out = append(out, report.Diagnostic{
			RuleID:     rule,
			Level:      "note",
			Message:    fmt.Sprintf("%s: %s", a.MethodName, a.Detail),
			File:       a.File,
			Line:       int(a.Line),
			Properties: props,
		})
	}
	return out
}
