package opt_test

import (
	"testing"

	"dragprof/internal/bench"
	"dragprof/internal/bytecode"
	"dragprof/internal/drag"
	"dragprof/internal/mj"
	"dragprof/internal/opt"
	"dragprof/internal/profile"
	"dragprof/internal/vm"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	prog, _, err := mj.CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func compileWorkload(t *testing.T, b *bench.Benchmark) *bytecode.Program {
	t.Helper()
	cp, err := b.Compile(bench.Original, bench.OriginalInput)
	if err != nil {
		t.Fatalf("compile %s: %v", b.Name, err)
	}
	return cp.Program
}

func runProgram(t *testing.T, p *bytecode.Program) (string, vm.Cost) {
	t.Helper()
	m, err := vm.New(p, vm.Config{})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Output(), m.CostReport()
}

func optimize(t *testing.T, p *bytecode.Program, passes ...string) *opt.Result {
	t.Helper()
	res, err := opt.Optimize(p, opt.Options{Passes: passes})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return res
}

// TestWorkloadDifferential is the safety harness the whole optimizer hangs
// on: for each of the nine workloads the optimized program must produce
// byte-identical output, and optimizing the optimized program must be a
// no-op (same ProgramHash, zero rewrites).
func TestWorkloadDifferential(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			want, _ := runProgram(t, compileWorkload(t, b))

			p := compileWorkload(t, b)
			res := optimize(t, p)
			got, cost := runProgram(t, p)
			if got != want {
				t.Fatalf("optimized output differs\nwant %q\ngot  %q", want, got)
			}
			if res.Stats.RegionSites > 0 && cost.RegionFrees == 0 {
				t.Logf("note: %d region sites converted but none freed at runtime", res.Stats.RegionSites)
			}

			// Idempotence: a second run must change nothing.
			res2 := optimize(t, p)
			if res2.Hash != res.Hash {
				t.Fatalf("not idempotent: first hash %s, second %s", res.Hash, res2.Hash)
			}
			s := res2.Stats
			if s.Devirtualized+s.RegionSites+s.DeadStoresNulled+s.NullStoresRemoved+s.UnreachableRemoved+s.NopsRemoved != 0 {
				t.Fatalf("second optimizer run rewrote code: %+v", s)
			}
		})
	}
}

// TestPassOrderingPermutations is the fuzz-style ordering check: every
// permutation of the three passes must yield byte-identical program output
// on every workload.
func TestPassOrderingPermutations(t *testing.T) {
	perms := [][]string{
		{"devirt", "region", "dce"},
		{"devirt", "dce", "region"},
		{"region", "devirt", "dce"},
		{"region", "dce", "devirt"},
		{"dce", "devirt", "region"},
		{"dce", "region", "devirt"},
	}
	if testing.Short() {
		perms = perms[1:3] // default order is already covered by TestWorkloadDifferential
	}
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			want, _ := runProgram(t, compileWorkload(t, b))
			for _, perm := range perms {
				p := compileWorkload(t, b)
				optimize(t, p, perm...)
				got, _ := runProgram(t, p)
				if got != want {
					t.Fatalf("pass order %v changed output\nwant %q\ngot  %q", perm, want, got)
				}
			}
		})
	}
}

// TestDevirtRewritesMonomorphicCall checks a single-implementation virtual
// call becomes a direct call and still computes the same result.
func TestDevirtRewritesMonomorphicCall(t *testing.T) {
	src := `
class Shape {
    int area() { return 0; }
}
class Square extends Shape {
    int side;
    Square(int s) { side = s; }
    int area() { return side * side; }
}
class Main {
    static void main() {
        Shape s = new Square(7);
        printInt(s.area());
    }
}`
	want, _ := runProgram(t, compileSrc(t, src))

	p := compileSrc(t, src)
	res := optimize(t, p, "devirt")
	if res.Stats.Devirtualized < 1 {
		t.Fatalf("expected at least one devirtualized site, stats %+v", res.Stats)
	}
	got, _ := runProgram(t, p)
	if got != want {
		t.Fatalf("devirtualized output differs: want %q got %q", want, got)
	}
	for _, a := range res.Actions {
		if a.Pass == "devirt" && a.MethodHash == "" {
			t.Errorf("devirt action missing methodHash anchor: %+v", a)
		}
	}
}

// TestRegionAllocFreesAtFrameExit checks that a method-local allocation is
// converted, that the VM actually frees it when the frame pops, and that the
// profiler sees a (weakly) smaller drag.
func TestRegionAllocFreesAtFrameExit(t *testing.T) {
	src := `
class Main {
    static int fill(int n) {
        int[] buf = new int[4096];
        int i = 0;
        while (i < n) {
            buf[i] = i;
            i = i + 1;
        }
        return buf[0] + buf[n - 1];
    }
    static void main() {
        int total = 0;
        int round = 0;
        while (round < 20) {
            total = total + fill(64);
            round = round + 1;
        }
        printInt(total);
    }
}`
	base := compileSrc(t, src)
	want, _ := runProgram(t, base)
	pb, _, err := profile.Run(compileSrc(t, src), "region-base", vm.Config{GCInterval: 1 << 20})
	if err != nil {
		t.Fatalf("profile base: %v", err)
	}
	baseDrag := drag.Analyze(pb, drag.Options{}).TotalDrag

	p := compileSrc(t, src)
	res := optimize(t, p, "region")
	if res.Stats.RegionSites < 1 {
		t.Fatalf("expected the buffer site to be region-converted, stats %+v", res.Stats)
	}
	got, cost := runProgram(t, p)
	if got != want {
		t.Fatalf("region-optimized output differs: want %q got %q", want, got)
	}
	if cost.RegionFrees < 20 {
		t.Fatalf("expected >=20 region frees (one per fill call), got %d", cost.RegionFrees)
	}

	po, _, err := profile.Run(p, "region-opt", vm.Config{GCInterval: 1 << 20})
	if err != nil {
		t.Fatalf("profile optimized: %v", err)
	}
	optDrag := drag.Analyze(po, drag.Options{}).TotalDrag
	if optDrag >= baseDrag {
		t.Fatalf("region allocation did not reduce drag: base %d, optimized %d", baseDrag, optDrag)
	}
}

// TestRegionUnderAllCollectors runs a region-optimized program under every
// collector (the generational one has the nursery-accounting FreeObserver
// path) and checks output and region frees.
func TestRegionUnderAllCollectors(t *testing.T) {
	src := `
class Node {
    int v;
    Node(int v) { this.v = v; }
}
class Main {
    static int sum(int n) {
        int s = 0;
        int i = 0;
        while (i < n) {
            Node tmp = new Node(i);
            s = s + tmp.v;
            i = i + 1;
        }
        return s;
    }
    static void main() { printInt(sum(500)); }
}`
	want, _ := runProgram(t, compileSrc(t, src))
	p := compileSrc(t, src)
	res := optimize(t, p)
	if res.Stats.RegionSites < 1 {
		t.Fatalf("Node allocation should be region-converted, stats %+v", res.Stats)
	}
	for _, col := range []vm.CollectorKind{vm.MarkSweep, vm.MarkCompact, vm.Generational} {
		m, err := vm.New(p, vm.Config{Collector: col, GCInterval: 8 << 10})
		if err != nil {
			t.Fatalf("%s: vm.New: %v", col, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("%s: run: %v", col, err)
		}
		if got := m.Output(); got != want {
			t.Fatalf("%s: output differs: want %q got %q", col, want, got)
		}
		if m.CostReport().RegionFrees == 0 {
			t.Errorf("%s: expected region frees", col)
		}
	}
}

// TestRegionSkipsEscapingSites: a site stored into a static must never be
// region-converted.
func TestRegionSkipsEscapingSites(t *testing.T) {
	src := `
class Keep {
    static int[] last;
}
class Main {
    static void stash() {
        int[] a = new int[16];
        a[0] = 9;
        Keep.last = a;
    }
    static void main() {
        stash();
        printInt(Keep.last[0]);
    }
}`
	p := compileSrc(t, src)
	optimize(t, p, "region")
	for _, m := range p.Methods {
		for _, in := range m.Code {
			if in.Op == bytecode.RegionNewObject || in.Op == bytecode.RegionNewArray {
				if p.Classes[m.Class].Name == "Main" && m.Name == "stash" {
					t.Fatalf("escaping allocation in stash was region-converted")
				}
			}
		}
	}
	want := "9\n"
	got, _ := runProgram(t, p)
	if got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
}

// TestDCENullsDeadStoresAndCompacts: a liveness-dead store is rewritten to a
// null store, and the Nops the rewrite leaves behind are compacted away.
func TestDCENullsDeadStoresAndCompacts(t *testing.T) {
	src := `
class Big {
    int[] pad;
    Big() { pad = new int[512]; }
}
class Main {
    static int f(int n) {
        Big unused = new Big();
        return n + 1;
    }
    static void main() { printInt(f(41)); }
}`
	want, _ := runProgram(t, compileSrc(t, src))
	p := compileSrc(t, src)
	res := optimize(t, p, "dce")
	if res.Stats.DeadStoresNulled < 1 {
		t.Fatalf("expected the unused store to be nulled, stats %+v", res.Stats)
	}
	if res.Stats.NopsRemoved < 1 {
		t.Fatalf("expected compaction to remove the editor Nops, stats %+v", res.Stats)
	}
	got, _ := runProgram(t, p)
	if got != want {
		t.Fatalf("dce output differs: want %q got %q", want, got)
	}
	// No Nop survives a dce pass.
	for _, m := range p.Methods {
		for pc, in := range m.Code {
			if in.Op == bytecode.Nop {
				t.Fatalf("Nop left at %s pc %d", m.Name, pc)
			}
		}
	}
}

// TestOptimizeRejectsUnknownPass guards the CLI's -passes flag plumbing.
func TestOptimizeRejectsUnknownPass(t *testing.T) {
	p := compileSrc(t, `class Main { static void main() { printInt(1); } }`)
	if _, err := opt.Optimize(p, opt.Options{Passes: []string{"inline"}}); err == nil {
		t.Fatal("expected error for unknown pass")
	}
}

// TestExceptionUnwindFreesRegions: region objects in frames popped by an
// exception unwind are freed too.
func TestExceptionUnwindFreesRegions(t *testing.T) {
	src := `
class Main {
    static int risky(int n) {
        int[] buf = new int[256];
        buf[0] = n;
        if (n > 3) {
            throw new RuntimeException("big");
        }
        return buf[0];
    }
    static void main() {
        int total = 0;
        int i = 0;
        while (i < 8) {
            try {
                total = total + risky(i);
            } catch (RuntimeException e) {
                total = total + 100;
            }
            i = i + 1;
        }
        printInt(total);
    }
}`
	want, _ := runProgram(t, compileSrc(t, src))
	p := compileSrc(t, src)
	res := optimize(t, p)
	got, cost := runProgram(t, p)
	if got != want {
		t.Fatalf("output differs: want %q got %q", want, got)
	}
	if res.Stats.RegionSites >= 1 && cost.RegionFrees < 8 {
		t.Fatalf("expected a region free per risky() call (including unwinds), got %d", cost.RegionFrees)
	}
}
