package opt

import (
	"fmt"

	"dragprof/internal/analysis"
	"dragprof/internal/bytecode"
)

// devirtPass rewrites RTA-monomorphic InvokeVirtual sites into direct
// InvokeSpecial calls. Safety: the VM's InvokeSpecial path pops the same
// argument count (overrides share the vtable slot's signature), performs
// the same null check, emits the same UseInvoke event, and pushes the same
// frame the dynamic dispatch would have chosen — RTA already proved only
// one implementation is choosable. Reachability is preserved (the target
// was already a call-graph edge), so re-running the pass finds nothing
// new: the rewrite is idempotent.
func devirtPass(p *bytecode.Program, res *Result) error {
	view := normalize(p)
	cg := analysis.BuildCallGraph(view)
	for _, m := range view.Methods {
		if !cg.Reachable[m.ID] {
			continue
		}
		for _, in := range m.Code {
			if in.Op == bytecode.InvokeVirtual {
				res.Stats.VirtualSites++
			}
		}
	}
	for _, mc := range analysis.MonomorphicCalls(view, cg) {
		m := p.Methods[mc.Method]
		decl := p.Methods[p.Classes[mc.DeclClass].VTable[mc.VIndex]]
		tgt := p.Methods[mc.Target]
		if tgt.NumParams != decl.NumParams {
			// Overrides share signatures, so this cannot happen in
			// compiler output; skip rather than corrupt the stack.
			continue
		}
		preHash := bytecode.MethodHash(p, m)
		in := &m.Code[mc.PC]
		*in = bytecode.Instr{Op: bytecode.InvokeSpecial, A: mc.Target, Line: in.Line}
		res.Stats.Devirtualized++
		res.Actions = append(res.Actions, action("devirt", p, m, preHash, mc.PC, -1,
			fmt.Sprintf("virtual call %s.%s has a single RTA target %s; devirtualized to a direct call",
				p.Classes[mc.DeclClass].Name, p.Classes[mc.DeclClass].VTableNames[mc.VIndex],
				methodName(p, tgt))))
	}
	return nil
}
