package bytecode

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a method body as printable text, one instruction per
// line, prefixed by the pc. Jump targets are annotated.
func Disassemble(p *Program, m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "method %s (id=%d, class=%s, params=%d, locals=%d)\n",
		m.Name, m.ID, className(p, m.Class), m.NumParams, m.MaxLocals)
	targets := map[int32]bool{}
	for _, in := range m.Code {
		switch in.Op {
		case Jump, JumpIfFalse, JumpIfTrue, JumpIfNull, JumpIfNonNull:
			targets[in.A] = true
		}
	}
	for _, ex := range m.Exceptions {
		targets[ex.Handler] = true
	}
	for pc, in := range m.Code {
		mark := "  "
		if targets[int32(pc)] {
			mark = "L "
		}
		fmt.Fprintf(&b, "%s%4d: %s", mark, pc, instrText(p, m, in))
		if in.Line > 0 {
			fmt.Fprintf(&b, "  ; line %d", in.Line)
		}
		b.WriteByte('\n')
	}
	for _, ex := range m.Exceptions {
		fmt.Fprintf(&b, "  catch [%d,%d) -> %d class=%s\n",
			ex.From, ex.To, ex.Handler, className(p, ex.CatchClass))
	}
	return b.String()
}

// DisassembleProgram renders every method of the program, grouped by class.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	ms := make([]*Method, len(p.Methods))
	copy(ms, p.Methods)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Class != ms[j].Class {
			return ms[i].Class < ms[j].Class
		}
		return ms[i].ID < ms[j].ID
	})
	for _, m := range ms {
		b.WriteString(Disassemble(p, m))
		b.WriteByte('\n')
	}
	return b.String()
}

func className(p *Program, id int32) string {
	if id < 0 || int(id) >= len(p.Classes) {
		return "<any>"
	}
	return p.Classes[id].Name
}

func instrText(p *Program, m *Method, in Instr) string {
	switch in.Op {
	case GetField, PutField:
		return fmt.Sprintf("%s slot=%d of %s", in.Op, in.A, className(p, in.B))
	case GetStatic, PutStatic:
		return fmt.Sprintf("%s %s.slot%d", in.Op, className(p, in.B), in.A)
	case NewObject, RegionNewObject:
		return fmt.Sprintf("%s %s site=%d", in.Op, className(p, in.A), in.B)
	case InvokeStatic, InvokeSpecial:
		return fmt.Sprintf("%s %s", in.Op, methodDesc(p, in.A))
	case InvokeVirtual:
		c := className(p, in.B)
		name := fmt.Sprintf("vtable[%d]", in.A)
		if in.B >= 0 && int(in.B) < len(p.Classes) {
			cl := p.Classes[in.B]
			if int(in.A) < len(cl.VTableNames) {
				name = cl.VTableNames[in.A]
			}
		}
		return fmt.Sprintf("%s %s.%s", in.Op, c, name)
	case CheckCast:
		return fmt.Sprintf("%s %s", in.Op, className(p, in.A))
	case ConstStr:
		if int(in.A) < len(p.Strings) {
			return fmt.Sprintf("%s %q", in.Op, p.Strings[in.A])
		}
		return fmt.Sprintf("%s #%d", in.Op, in.A)
	default:
		return in.String()
	}
}

func methodDesc(p *Program, id int32) string {
	if id < 0 || int(id) >= len(p.Methods) {
		return fmt.Sprintf("method#%d", id)
	}
	m := p.Methods[id]
	return fmt.Sprintf("%s.%s", className(p, m.Class), m.Name)
}

// Verify performs structural checks over a program: jump targets in range,
// local slots within MaxLocals, method/class/site ids resolvable, exception
// ranges well-formed. It returns the first problem found, or nil. The VM
// assumes verified code and omits per-instruction bound checks for these
// properties.
func Verify(p *Program) error {
	if p.Main < 0 || int(p.Main) >= len(p.Methods) {
		return fmt.Errorf("bytecode: main method id %d out of range", p.Main)
	}
	for _, c := range p.Classes {
		if c.Super >= int32(len(p.Classes)) {
			return fmt.Errorf("bytecode: class %s super id %d out of range", c.Name, c.Super)
		}
		if int32(len(c.RefSlots)) != c.NumFieldSlots {
			return fmt.Errorf("bytecode: class %s RefSlots length %d != NumFieldSlots %d",
				c.Name, len(c.RefSlots), c.NumFieldSlots)
		}
		for i, mid := range c.VTable {
			if mid < 0 || int(mid) >= len(p.Methods) {
				return fmt.Errorf("bytecode: class %s vtable[%d] id %d out of range", c.Name, i, mid)
			}
		}
	}
	for _, m := range p.Methods {
		if err := verifyMethod(p, m); err != nil {
			return err
		}
	}
	return nil
}

func verifyMethod(p *Program, m *Method) error {
	n := int32(len(m.Code))
	fail := func(pc int, format string, args ...any) error {
		return fmt.Errorf("bytecode: %s pc=%d: %s", methodDesc(p, m.ID), pc, fmt.Sprintf(format, args...))
	}
	if m.NumParams > m.MaxLocals {
		return fmt.Errorf("bytecode: %s has %d params but %d locals", methodDesc(p, m.ID), m.NumParams, m.MaxLocals)
	}
	for pc, in := range m.Code {
		switch in.Op {
		case Jump, JumpIfFalse, JumpIfTrue, JumpIfNull, JumpIfNonNull:
			if in.A < 0 || in.A >= n {
				return fail(pc, "jump target %d out of range [0,%d)", in.A, n)
			}
		case LoadLocal, StoreLocal:
			if in.A < 0 || int(in.A) >= m.MaxLocals {
				return fail(pc, "local slot %d out of range [0,%d)", in.A, m.MaxLocals)
			}
		case NewObject, RegionNewObject:
			if in.A < 0 || int(in.A) >= len(p.Classes) {
				return fail(pc, "class id %d out of range", in.A)
			}
			if in.B < 0 || int(in.B) >= len(p.Sites) {
				return fail(pc, "site id %d out of range", in.B)
			}
			if in.Op == RegionNewObject && p.Classes[in.A].Finalizable {
				return fail(pc, "region allocation of finalizable class %s", p.Classes[in.A].Name)
			}
		case NewArray, RegionNewArray:
			if ElemKind(in.A) < ElemInt || ElemKind(in.A) > ElemRef {
				return fail(pc, "bad element kind %d", in.A)
			}
			if in.B < 0 || int(in.B) >= len(p.Sites) {
				return fail(pc, "site id %d out of range", in.B)
			}
		case InvokeStatic, InvokeSpecial:
			if in.A < 0 || int(in.A) >= len(p.Methods) {
				return fail(pc, "method id %d out of range", in.A)
			}
		case InvokeVirtual:
			if in.B < 0 || int(in.B) >= len(p.Classes) {
				return fail(pc, "class id %d out of range", in.B)
			}
			if in.A < 0 || int(in.A) >= len(p.Classes[in.B].VTable) {
				return fail(pc, "vtable index %d out of range for class %s", in.A, p.Classes[in.B].Name)
			}
		case CallBuiltin:
			if in.A < 0 || int(in.A) >= NumBuiltins() {
				return fail(pc, "builtin id %d out of range", in.A)
			}
		case ConstStr:
			if in.A < 0 || int(in.A) >= len(p.Strings) {
				return fail(pc, "string pool index %d out of range", in.A)
			}
		case CheckCast:
			if in.A < 0 || int(in.A) >= len(p.Classes) {
				return fail(pc, "class id %d out of range", in.A)
			}
		case GetStatic, PutStatic:
			if in.B < 0 || int(in.B) >= len(p.Classes) {
				return fail(pc, "class id %d out of range", in.B)
			}
			if in.A < 0 || in.A >= p.Classes[in.B].NumStaticSlots {
				return fail(pc, "static slot %d out of range for class %s", in.A, p.Classes[in.B].Name)
			}
		}
		if in.Op >= opCount {
			return fail(pc, "unknown opcode %d", in.Op)
		}
	}
	for i, ex := range m.Exceptions {
		if ex.From < 0 || ex.To > n || ex.From >= ex.To {
			return fmt.Errorf("bytecode: %s exception range %d malformed [%d,%d)", methodDesc(p, m.ID), i, ex.From, ex.To)
		}
		if ex.Handler < 0 || ex.Handler >= n {
			return fmt.Errorf("bytecode: %s exception handler %d out of range", methodDesc(p, m.ID), ex.Handler)
		}
		if ex.CatchClass >= int32(len(p.Classes)) {
			return fmt.Errorf("bytecode: %s exception catch class %d out of range", methodDesc(p, m.ID), ex.CatchClass)
		}
	}
	if n == 0 {
		return fmt.Errorf("bytecode: %s has empty body", methodDesc(p, m.ID))
	}
	last := m.Code[n-1].Op
	if last != Return && last != ReturnValue && last != Jump && last != Throw {
		return fmt.Errorf("bytecode: %s can fall off the end (last op %s)", methodDesc(p, m.ID), last)
	}
	return nil
}
