package bytecode

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"
)

// Content hashing for analysis-result caching: the batch prover keys its
// cached verdicts by program and method content so that re-proving an
// unchanged program (or locating an unchanged method across builds) costs a
// hash, not a points-to run. The hash covers everything the static analyses
// observe — instruction streams, exception tables, class layout, site
// tables — and deliberately nothing they do not (no pointers, no map
// iteration order), so two compiles of the same sources always agree.

func hashString(h hash.Hash, s string) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func hashInt32s(h hash.Hash, vs ...int32) {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		h.Write(b[:])
	}
}

func hashMethod(h hash.Hash, p *Program, m *Method) {
	hashString(h, m.Name)
	hashInt32s(h, m.Class, int32(m.NumParams), int32(m.MaxLocals), int32(m.Flags))
	if m.Class >= 0 && int(m.Class) < len(p.Classes) {
		hashString(h, p.Classes[m.Class].Name)
		hashString(h, p.Classes[m.Class].SourceFile)
	}
	hashInt32s(h, int32(len(m.Code)))
	for _, in := range m.Code {
		hashInt32s(h, int32(in.Op), in.A, in.B, in.Line)
	}
	hashInt32s(h, int32(len(m.Exceptions)))
	for _, ex := range m.Exceptions {
		hashInt32s(h, ex.From, ex.To, ex.Handler, ex.CatchClass)
	}
}

// MethodHash returns the content hash of one method: its signature shape,
// declaring class, instruction stream and exception table. Methods with
// identical hashes are analyzed identically by every pass in
// internal/analysis.
func MethodHash(p *Program, m *Method) string {
	h := sha256.New()
	hashMethod(h, p, m)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ProgramHash returns the content hash of a whole program: all class
// layouts, all method bodies, the site table and the entry point. It is the
// cache key for whole-program analysis results — equal hashes guarantee
// equal points-to, liveness and kill proofs.
func ProgramHash(p *Program) string {
	h := sha256.New()
	hashInt32s(h, p.Main, int32(len(p.Classes)), int32(len(p.Methods)), int32(len(p.Sites)))
	for _, c := range p.Classes {
		hashString(h, c.Name)
		hashString(h, c.SourceFile)
		hashInt32s(h, c.Super, c.NumFieldSlots, c.NumStaticSlots, c.HasInit)
		hashInt32s(h, int32(len(c.Fields)))
		for _, fd := range c.Fields {
			hashString(h, fd.Name)
			flags := int32(0)
			if fd.Static {
				flags |= 1
			}
			if fd.Ref {
				flags |= 2
			}
			hashInt32s(h, fd.Slot, flags, int32(fd.Vis))
		}
		hashInt32s(h, int32(len(c.VTable)))
		hashInt32s(h, c.VTable...)
	}
	for _, m := range p.Methods {
		hashMethod(h, p, m)
	}
	for i := range p.Sites {
		s := &p.Sites[i]
		hashInt32s(h, s.Method, s.Line)
		hashString(h, s.Desc)
		hashString(h, s.What)
	}
	hashInt32s(h, p.StaticInits...)
	// RuntimeSites participate in site numbering; hash them in name order.
	names := make([]string, 0, len(p.RuntimeSites))
	for name := range p.RuntimeSites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hashString(h, name)
		hashInt32s(h, p.RuntimeSites[name])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
