// Package bytecode defines the stack-machine instruction set executed by the
// dragprof virtual machine, together with the containers (methods, classes,
// programs) produced by the MiniJava compiler.
//
// The design deliberately mirrors the subset of the JVM instruction set that
// the paper's instrumented JVM hooks: getfield/putfield, invokevirtual,
// monitorenter/monitorexit, array loads and stores, and allocation
// instructions. Every instruction that can "use" an object (in the paper's
// sense, Section 2.1.1) is a distinct opcode so the interpreter can emit a
// precise use event.
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// Instruction opcodes. Operand meanings are documented per opcode; A and B
// are the two int32 operands of an Instr.
const (
	// Nop does nothing.
	Nop Op = iota

	// ConstInt pushes the integer A.
	ConstInt
	// ConstBool pushes the boolean A (0 or 1).
	ConstBool
	// ConstChar pushes the character code A.
	ConstChar
	// ConstNull pushes the null reference.
	ConstNull
	// ConstStr allocates (or reuses, per the VM's interning policy) the
	// string literal with pool index A and pushes a reference to it.
	ConstStr

	// LoadLocal pushes local slot A.
	LoadLocal
	// StoreLocal pops into local slot A.
	StoreLocal

	// GetField pops an object reference and pushes field slot A of it.
	// B is the class id that declares the field (for diagnostics).
	// Counts as a use of the object.
	GetField
	// PutField pops a value then an object reference, and stores the value
	// into field slot A. Counts as a use of the object.
	PutField
	// GetStatic pushes static slot A of class B.
	GetStatic
	// PutStatic pops into static slot A of class B.
	PutStatic

	// NewObject allocates an instance of class A and pushes a reference.
	// B is the allocation site id.
	NewObject
	// NewArray pops a length and allocates an array with element kind A
	// (an ElemKind); B is the allocation site id. For ElemRef arrays the
	// element class is not tracked (MiniJava arrays are covariant-free).
	NewArray
	// ArrayLoad pops index then array reference, pushes the element.
	// A is the ElemKind. Counts as a use of the array.
	ArrayLoad
	// ArrayStore pops value, index, then array reference, stores the
	// element. A is the ElemKind. Counts as a use of the array.
	ArrayStore
	// ArrayLen pops an array reference and pushes its length.
	// Counts as a use of the array.
	ArrayLen

	// InvokeVirtual pops arguments then a receiver and invokes the method
	// at vtable index A; B is the static class id used for call-graph
	// construction. Counts as a use of the receiver.
	InvokeVirtual
	// InvokeStatic invokes method id A.
	InvokeStatic
	// InvokeSpecial invokes method id A directly on the popped receiver
	// (constructors and super calls). Counts as a use of the receiver.
	InvokeSpecial
	// CallBuiltin invokes the builtin with id A (see Builtin). Builtins
	// that dereference an object argument count as native handle uses.
	CallBuiltin

	// Return returns void from the current method.
	Return
	// ReturnValue pops a value and returns it.
	ReturnValue

	// Jump transfers control to pc A.
	Jump
	// JumpIfFalse pops a boolean and jumps to pc A when it is false.
	JumpIfFalse
	// JumpIfTrue pops a boolean and jumps to pc A when it is true.
	JumpIfTrue
	// JumpIfNull pops a reference and jumps to pc A when it is null.
	JumpIfNull
	// JumpIfNonNull pops a reference and jumps to pc A when it is non-null.
	JumpIfNonNull

	// Add through Neg are integer arithmetic on the top of stack.
	Add
	Sub
	Mul
	Div
	Rem
	Neg

	// CmpEQ through CmpGE pop two integers and push a boolean.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	// RefEQ and RefNE compare two references for identity.
	RefEQ
	RefNE
	// Not negates the boolean on top of the stack.
	Not

	// Dup duplicates the top of stack.
	Dup
	// Pop discards the top of stack.
	Pop
	// Swap exchanges the top two stack values.
	Swap

	// CheckCast verifies the reference on top of the stack is null or an
	// instance of class A, raising ClassCastException otherwise.
	CheckCast
	// Throw pops an exception reference and raises it.
	Throw
	// MonitorEnter pops an object reference and enters its monitor.
	// Counts as a use of the object.
	MonitorEnter
	// MonitorExit pops an object reference and exits its monitor.
	// Counts as a use of the object.
	MonitorExit

	// RegionNewObject is NewObject (A = class id, B = site id) for an
	// allocation the optimizer proved method-local: the VM additionally
	// registers the object in the current frame's region, and frees it
	// wholesale when the frame exits (normal return or unwinding) if it is
	// still alive then. Emitted only by internal/opt; the compiler never
	// produces it.
	RegionNewObject
	// RegionNewArray is NewArray (A = ElemKind, B = site id) with the same
	// frame-region registration as RegionNewObject.
	RegionNewArray

	opCount
)

var opNames = [...]string{
	Nop: "nop", ConstInt: "const.i", ConstBool: "const.b", ConstChar: "const.c",
	ConstNull: "const.null", ConstStr: "const.str",
	LoadLocal: "load", StoreLocal: "store",
	GetField: "getfield", PutField: "putfield",
	GetStatic: "getstatic", PutStatic: "putstatic",
	NewObject: "new", NewArray: "newarray",
	ArrayLoad: "aload", ArrayStore: "astore", ArrayLen: "arraylen",
	InvokeVirtual: "invokevirtual", InvokeStatic: "invokestatic",
	InvokeSpecial: "invokespecial", CallBuiltin: "builtin",
	Return: "return", ReturnValue: "returnvalue",
	Jump: "jump", JumpIfFalse: "jumpfalse", JumpIfTrue: "jumptrue",
	JumpIfNull: "jumpnull", JumpIfNonNull: "jumpnonnull",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem", Neg: "neg",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge", RefEQ: "refeq", RefNE: "refne",
	Not: "not", Dup: "dup", Pop: "pop", Swap: "swap",
	Throw: "throw", MonitorEnter: "monitorenter", MonitorExit: "monitorexit",
	CheckCast: "checkcast",
	RegionNewObject: "region.new", RegionNewArray: "region.newarray",
}

// Base maps the region allocation opcodes to their plain forms (the operand
// layouts are identical); every other opcode maps to itself. Analyses that
// predate the optimizer reason over base opcodes only — see opt's
// normalization step.
func (op Op) Base() Op {
	switch op {
	case RegionNewObject:
		return NewObject
	case RegionNewArray:
		return NewArray
	}
	return op
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ElemKind identifies the element type of an array.
type ElemKind int32

// Array element kinds.
const (
	ElemInt ElemKind = iota
	ElemBool
	ElemChar
	ElemRef
)

// String returns a short name for the element kind.
func (k ElemKind) String() string {
	switch k {
	case ElemInt:
		return "int"
	case ElemBool:
		return "bool"
	case ElemChar:
		return "char"
	case ElemRef:
		return "ref"
	}
	return fmt.Sprintf("elem(%d)", int32(k))
}

// ElemBytes returns the per-element payload size in bytes, following the
// classic JVM layout the paper measured against (Section 2.1.1).
func (k ElemKind) ElemBytes() int64 {
	switch k {
	case ElemBool:
		return 1
	case ElemChar:
		return 2
	default:
		return 4
	}
}

// Builtin identifies a native function provided by the VM. Builtins model
// the "native code" of the paper's JVM: ones that receive an object argument
// dereference its handle and therefore count as uses.
type Builtin int32

// Builtin function ids.
const (
	// BuiltinPrint prints the String argument without a newline.
	BuiltinPrint Builtin = iota
	// BuiltinPrintln prints the String argument followed by a newline.
	BuiltinPrintln
	// BuiltinPrintInt prints the integer argument followed by a newline.
	BuiltinPrintInt
	// BuiltinRandom returns a deterministic pseudo-random int in [0, arg).
	BuiltinRandom
	// BuiltinSeedRandom reseeds the VM's deterministic generator.
	BuiltinSeedRandom
	// BuiltinArrayCopy copies src, srcPos, dst, dstPos, len between arrays.
	BuiltinArrayCopy
	// BuiltinStringEquals compares two Strings for content equality.
	BuiltinStringEquals
	// BuiltinHash returns a deterministic hash of the String argument.
	BuiltinHash
	// BuiltinTicks returns the allocation clock (bytes allocated so far).
	BuiltinTicks
	// BuiltinGC requests a garbage collection.
	BuiltinGC
	// BuiltinAbort terminates the program with an error message.
	BuiltinAbort

	builtinCount
)

var builtinNames = [...]string{
	BuiltinPrint: "print", BuiltinPrintln: "println", BuiltinPrintInt: "printInt",
	BuiltinRandom: "random", BuiltinSeedRandom: "seedRandom",
	BuiltinArrayCopy: "arraycopy", BuiltinStringEquals: "stringEquals",
	BuiltinHash: "hash", BuiltinTicks: "ticks", BuiltinGC: "gc",
	BuiltinAbort: "abort",
}

// String returns the source-level name of the builtin.
func (b Builtin) String() string {
	if int(b) < len(builtinNames) && builtinNames[b] != "" {
		return builtinNames[b]
	}
	return fmt.Sprintf("builtin(%d)", int32(b))
}

// BuiltinByName maps a source-level name to its builtin id.
func BuiltinByName(name string) (Builtin, bool) {
	for b, n := range builtinNames {
		if n == name {
			return Builtin(b), true
		}
	}
	return 0, false
}

// NumBuiltins reports how many builtins exist.
func NumBuiltins() int { return int(builtinCount) }

// Instr is a single bytecode instruction. Line records the MiniJava source
// line that produced the instruction; it feeds allocation-site and
// last-use-site reporting.
type Instr struct {
	Op   Op
	A    int32
	B    int32
	Line int32
}

// String renders the instruction in disassembly form.
func (in Instr) String() string {
	switch in.Op {
	case Nop, ConstNull, Return, ReturnValue, Add, Sub, Mul, Div, Rem, Neg,
		CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE, RefEQ, RefNE, Not,
		Dup, Pop, Swap, Throw, MonitorEnter, MonitorExit:
		return in.Op.String()
	case GetField, PutField, GetStatic, PutStatic, NewObject, RegionNewObject, InvokeVirtual:
		return fmt.Sprintf("%s %d %d", in.Op, in.A, in.B)
	case NewArray, RegionNewArray:
		return fmt.Sprintf("%s %s site=%d", in.Op, ElemKind(in.A), in.B)
	case CallBuiltin:
		return fmt.Sprintf("%s %s", in.Op, Builtin(in.A))
	default:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	}
}

// ExRange is an exception-table entry: while pc is in [From, To) and an
// exception whose class is (a subclass of) CatchClass is raised, control
// transfers to Handler with the exception pushed. CatchClass -1 catches all.
type ExRange struct {
	From, To   int32
	Handler    int32
	CatchClass int32
}

// MethodFlags describe a method.
type MethodFlags uint8

// Method flag bits.
const (
	// FlagStatic marks a static method.
	FlagStatic MethodFlags = 1 << iota
	// FlagCtor marks a constructor.
	FlagCtor
	// FlagFinalizer marks a finalize() method.
	FlagFinalizer
)

// Method is a compiled method body.
type Method struct {
	ID         int32
	Class      int32 // declaring class id; -1 for top-level functions
	Name       string
	NumParams  int // including the receiver for instance methods
	MaxLocals  int
	Flags      MethodFlags
	Code       []Instr
	Exceptions []ExRange
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Flags&FlagStatic != 0 }

// Visibility is a MiniJava access modifier. The profiler reports it for
// fields because the paper's Table 5 classifies rewrites by the reference
// kind they touch (private, protected, package, public static, ...).
type Visibility uint8

// Visibility levels.
const (
	VisPackage Visibility = iota
	VisPrivate
	VisProtected
	VisPublic
)

// String returns the source-level modifier spelling.
func (v Visibility) String() string {
	switch v {
	case VisPrivate:
		return "private"
	case VisProtected:
		return "protected"
	case VisPublic:
		return "public"
	default:
		return "package"
	}
}

// FieldDef describes one field of a class.
type FieldDef struct {
	Name   string
	Slot   int32 // instance field slot or static slot index
	Static bool
	Ref    bool // true when the field holds a reference
	Vis    Visibility
}

// Class is a compiled class.
type Class struct {
	ID     int32
	Name   string
	Super  int32      // -1 for root classes
	Fields []FieldDef // declared fields only (not inherited)
	// NumFieldSlots counts instance slots including inherited ones.
	NumFieldSlots int32
	// NumStaticSlots counts static slots declared by this class.
	NumStaticSlots int32
	// VTable maps vtable index to method id, including inherited entries.
	VTable []int32
	// VTableNames maps vtable index to method name (parallel to VTable).
	VTableNames []string
	// Finalizable is true when the class (or a superclass) declares
	// finalize().
	Finalizable bool
	// HasInit is the method id of the static initializer, or -1.
	HasInit int32
	// RefSlots marks which instance slots hold references.
	RefSlots []bool
	// StaticRefSlots marks which static slots hold references.
	StaticRefSlots []bool
	// SourceFile is the MiniJava file that declared the class.
	SourceFile string
}

// Site is an allocation site: the static program point of a NewObject or
// NewArray instruction (or of a call, for nested-site chains).
type Site struct {
	ID     int32
	Method int32
	Line   int32
	// Desc is "Class.method:line (what)" for reports.
	Desc string
	// What names the allocated class or array kind, or "call" for call
	// sites appearing in nested chains.
	What string
}

// Program is a complete compiled program.
type Program struct {
	Classes []*Class
	Methods []*Method
	Sites   []Site
	Strings []string // string literal pool
	// Main is the method id of the entry point.
	Main int32
	// StaticInits lists static initializer method ids in execution order.
	StaticInits []int32
	// StringClass is the class id of the well-known String class, and
	// StringChars its char[] field slot. The VM materializes string
	// literals through them.
	StringClass int32
	StringChars int32
	// ClassByName resolves a class name to its id.
	ClassIndex map[string]int32
	// RuntimeClasses maps well-known exception class names
	// (NullPointerException, IndexOutOfBoundsException,
	// ArithmeticException, NegativeArraySizeException, OutOfMemoryError)
	// to class ids for VM-raised exceptions; absent names are not mapped.
	RuntimeClasses map[string]int32
	// RuntimeSites maps those same names to synthetic allocation sites
	// used when the VM itself allocates the exception object.
	RuntimeSites map[string]int32
}

// ClassByName returns the class with the given name, or nil.
func (p *Program) ClassByName(name string) *Class {
	id, ok := p.ClassIndex[name]
	if !ok {
		return nil
	}
	return p.Classes[id]
}

// MethodByName returns the method of class with the given name, searching
// superclasses, or nil.
func (p *Program) MethodByName(class, name string) *Method {
	c := p.ClassByName(class)
	for c != nil {
		for i, n := range c.VTableNames {
			if n == name {
				return p.Methods[c.VTable[i]]
			}
		}
		// static methods are not in the vtable; scan all methods.
		for _, m := range p.Methods {
			if m.Class == c.ID && m.Name == name {
				return m
			}
		}
		if c.Super < 0 {
			break
		}
		c = p.Classes[c.Super]
	}
	return nil
}

// IsSubclass reports whether class sub is class super or a subclass of it.
func (p *Program) IsSubclass(sub, super int32) bool {
	for sub >= 0 {
		if sub == super {
			return true
		}
		sub = p.Classes[sub].Super
	}
	return false
}

// SiteDesc returns the printable description of a site id, tolerating -1.
func (p *Program) SiteDesc(id int32) string {
	if id < 0 || int(id) >= len(p.Sites) {
		return "<none>"
	}
	return p.Sites[id].Desc
}
