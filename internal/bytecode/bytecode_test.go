package bytecode

import (
	"strings"
	"testing"
)

// tinyProgram builds a minimal valid program by hand.
func tinyProgram() *Program {
	main := &Method{
		ID: 0, Class: 0, Name: "main", Flags: FlagStatic,
		MaxLocals: 2,
		Code: []Instr{
			{Op: ConstInt, A: 5},
			{Op: StoreLocal, A: 0},
			{Op: LoadLocal, A: 0},
			{Op: JumpIfFalse, A: 5},
			{Op: Jump, A: 0},
			{Op: Return},
		},
	}
	cls := &Class{
		ID: 0, Name: "Main", Super: -1,
		RefSlots: []bool{},
	}
	return &Program{
		Classes:    []*Class{cls},
		Methods:    []*Method{main},
		Main:       0,
		ClassIndex: map[string]int32{"Main": 0},
	}
}

func TestVerifyAcceptsValid(t *testing.T) {
	if err := Verify(tinyProgram()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"bad main", func(p *Program) { p.Main = 7 }, "main method id"},
		{"jump target", func(p *Program) { p.Methods[0].Code[4].A = 100 }, "jump target"},
		{"negative jump", func(p *Program) { p.Methods[0].Code[4].A = -1 }, "jump target"},
		{"local slot", func(p *Program) { p.Methods[0].Code[1].A = 5 }, "local slot"},
		{"fall off end", func(p *Program) {
			p.Methods[0].Code[len(p.Methods[0].Code)-1] = Instr{Op: Pop}
		}, "fall off the end"},
		{"empty body", func(p *Program) { p.Methods[0].Code = nil }, "empty body"},
		{"params exceed locals", func(p *Program) { p.Methods[0].NumParams = 9 }, "params"},
		{"bad builtin", func(p *Program) {
			p.Methods[0].Code[0] = Instr{Op: CallBuiltin, A: 999}
		}, "builtin id"},
		{"bad string pool", func(p *Program) {
			p.Methods[0].Code[0] = Instr{Op: ConstStr, A: 3}
		}, "string pool"},
		{"bad checkcast", func(p *Program) {
			p.Methods[0].Code[0] = Instr{Op: CheckCast, A: 4}
		}, "class id"},
		{"bad exception range", func(p *Program) {
			p.Methods[0].Exceptions = []ExRange{{From: 4, To: 2, Handler: 0, CatchClass: -1}}
		}, "exception range"},
		{"bad handler", func(p *Program) {
			p.Methods[0].Exceptions = []ExRange{{From: 0, To: 2, Handler: 99, CatchClass: -1}}
		}, "handler"},
	}
	for _, c := range cases {
		p := tinyProgram()
		c.mutate(p)
		err := Verify(p)
		if err == nil {
			t.Errorf("%s: not rejected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := Nop; op < opCount; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("unknown op rendering: %s", Op(200))
	}
}

func TestElemKind(t *testing.T) {
	if ElemBool.ElemBytes() != 1 || ElemChar.ElemBytes() != 2 ||
		ElemInt.ElemBytes() != 4 || ElemRef.ElemBytes() != 4 {
		t.Error("element byte sizes wrong")
	}
	for _, k := range []ElemKind{ElemInt, ElemBool, ElemChar, ElemRef} {
		if strings.Contains(k.String(), "elem(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestBuiltinByName(t *testing.T) {
	for b := Builtin(0); int(b) < NumBuiltins(); b++ {
		got, ok := BuiltinByName(b.String())
		if !ok || got != b {
			t.Errorf("builtin %s does not round-trip", b)
		}
	}
	if _, ok := BuiltinByName("nope"); ok {
		t.Error("unknown builtin resolved")
	}
}

func TestIsSubclass(t *testing.T) {
	p := &Program{Classes: []*Class{
		{ID: 0, Name: "A", Super: -1},
		{ID: 1, Name: "B", Super: 0},
		{ID: 2, Name: "C", Super: 1},
		{ID: 3, Name: "D", Super: -1},
	}}
	cases := []struct {
		sub, super int32
		want       bool
	}{
		{2, 0, true}, {2, 1, true}, {2, 2, true},
		{0, 2, false}, {3, 0, false}, {1, 3, false},
	}
	for _, c := range cases {
		if got := p.IsSubclass(c.sub, c.super); got != c.want {
			t.Errorf("IsSubclass(%d, %d) = %v", c.sub, c.super, got)
		}
	}
}

func TestDisassembleAnnotations(t *testing.T) {
	p := tinyProgram()
	p.Methods[0].Exceptions = []ExRange{{From: 0, To: 2, Handler: 5, CatchClass: -1}}
	text := Disassemble(p, p.Methods[0])
	if !strings.Contains(text, "method main") {
		t.Errorf("missing header:\n%s", text)
	}
	// Jump targets are marked with L.
	if !strings.Contains(text, "L ") {
		t.Errorf("no jump-target markers:\n%s", text)
	}
	if !strings.Contains(text, "catch [0,2) -> 5") {
		t.Errorf("no exception table:\n%s", text)
	}
}

func TestSiteDesc(t *testing.T) {
	p := tinyProgram()
	p.Sites = []Site{{ID: 0, Desc: "Main.main:3 (new X)"}}
	if p.SiteDesc(0) != "Main.main:3 (new X)" {
		t.Error("site desc lookup")
	}
	if p.SiteDesc(-1) != "<none>" || p.SiteDesc(9) != "<none>" {
		t.Error("out-of-range site desc")
	}
}
