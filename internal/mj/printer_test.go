package mj

import (
	"reflect"
	"strings"
	"testing"
)

// stripPositions zeroes every Pos in an AST via reflection so structural
// comparison ignores layout.
func stripPositions(v reflect.Value) {
	switch v.Kind() {
	case reflect.Ptr, reflect.Interface:
		if !v.IsNil() {
			stripPositions(v.Elem())
		}
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(Pos{}) {
			if v.CanSet() {
				v.Set(reflect.Zero(v.Type()))
			}
			return
		}
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() || v.Field(i).Kind() == reflect.Ptr ||
				v.Field(i).Kind() == reflect.Interface || v.Field(i).Kind() == reflect.Slice ||
				v.Field(i).Kind() == reflect.Struct {
				stripPositions(v.Field(i))
			}
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			stripPositions(v.Index(i))
		}
	}
}

func normalize(t *testing.T, f *File) *File {
	t.Helper()
	f.Name = ""
	for _, c := range f.Classes {
		c.File = ""
	}
	stripPositions(reflect.ValueOf(f))
	return f
}

// roundTrip asserts parse(print(parse(src))) == parse(src) structurally.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	f1, errs := Parse("a.mj", src)
	if len(errs) > 0 {
		t.Fatalf("parse 1: %v", errs)
	}
	printed := Print(f1)
	f2, errs := Parse("b.mj", printed)
	if len(errs) > 0 {
		t.Fatalf("parse 2: %v\nprinted source:\n%s", errs, printed)
	}
	a, b := normalize(t, f1), normalize(t, f2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip diverged.\noriginal AST: %#v\nreparsed AST: %#v\nprinted:\n%s", a, b, printed)
	}
}

func TestPrinterRoundTripBasics(t *testing.T) {
	roundTrip(t, `
class Point {
    private int x;
    protected int y;
    public static int count = 0;

    Point(int a, int b) {
        x = a;
        y = b;
    }

    int dist() {
        return x * x + y * y;
    }
}`)
}

func TestPrinterRoundTripControlFlow(t *testing.T) {
	roundTrip(t, `
class M {
    static void main() {
        int n = 10;
        if (n > 3 && n < 100 || n == 0) {
            n = -n;
        } else {
            n = n + 1;
        }
        while (n > 0) {
            n = n - 1;
            if (n == 5) { continue; }
            if (n == 2) { break; }
        }
        for (int i = 0; i < 10; i = i + 1) {
            printInt(i % 3);
        }
        try {
            throw new RuntimeException("x");
        } catch (RuntimeException e) {
            println(e.getMessage());
        }
        synchronized (new Object()) {
            n = 0;
        }
    }
}
class RuntimeException {
    String message;
    RuntimeException(String m) { message = m; }
    String getMessage() { return message; }
}
class Object { }
class String { char[] chars; }`)
}

func TestPrinterRoundTripExpressions(t *testing.T) {
	roundTrip(t, `
class Box { int v; Box(int x) { v = x; } }
class M {
    static void main() {
        Box b = new Box(3);
        Object o = b;
        Box back = (Box) o;
        int[] a = new int[5];
        int[][] grid = new int[4][];
        char c = 'q';
        char nl = '\n';
        bool flag = !(c == 'q');
        a[b.v] = a[0] + back.v;
        String s = "hi\n\"quoted\"";
    }
}
class Object { }
class String { char[] chars; }`)
}

// TestPrinterRoundTripAllPrograms round-trips every benchmark workload and
// the runtime libraries — ~2k lines of real MiniJava.
func TestPrinterRoundTripAllPrograms(t *testing.T) {
	roundTrip(t, Stdlib)
}

func TestPrinterOutputCompiles(t *testing.T) {
	src := `
class Acc {
    int total;
    void add(int v) { total = total + v; }
}
class M {
    static void main() {
        Acc a = new Acc();
        for (int i = 0; i < 5; i = i + 1) { a.add(i); }
        printInt(a.total);
    }
}`
	f, errs := Parse("t.mj", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	printed := Print(f)
	if _, _, err := CompileWithStdlib([]string{"p.mj"}, map[string]string{"p.mj": printed}); err != nil {
		t.Fatalf("printed source does not compile: %v\n%s", err, printed)
	}
	if !strings.Contains(printed, "class Acc {") {
		t.Errorf("printed:\n%s", printed)
	}
}
