package mj

import (
	"errors"
	"fmt"

	"dragprof/internal/bytecode"
)

// Compile lowers a checked program to bytecode. The returned program
// verifies cleanly (a failure to do so is a compiler bug reported as an
// error).
func Compile(ck *Checked) (*bytecode.Program, error) {
	c := &compiler{
		ck:        ck,
		stringIdx: make(map[string]int32),
	}
	prog, err := c.compile()
	if err != nil {
		return nil, err
	}
	if err := bytecode.Verify(prog); err != nil {
		return nil, fmt.Errorf("mj: internal error, generated code fails verification: %w", err)
	}
	return prog, nil
}

// CompileSources parses, checks and compiles the named sources in order.
// It returns the compiled program and the semantic annotations.
func CompileSources(names []string, sources map[string]string) (*bytecode.Program, *Checked, error) {
	ast, perrs := ParseProgram(names, sources)
	if len(perrs) > 0 {
		return nil, nil, errors.Join(perrs...)
	}
	ck, serrs := Check(ast)
	if len(serrs) > 0 {
		return nil, nil, errors.Join(serrs...)
	}
	prog, err := Compile(ck)
	if err != nil {
		return nil, nil, err
	}
	return prog, ck, nil
}

// runtimeExceptionNames are the exception classes the VM raises itself.
var runtimeExceptionNames = []string{
	"NullPointerException",
	"ClassCastException",
	"IndexOutOfBoundsException",
	"ArithmeticException",
	"NegativeArraySizeException",
	"OutOfMemoryError",
}

type compiler struct {
	ck        *Checked
	prog      *bytecode.Program
	stringIdx map[string]int32
}

func (c *compiler) compile() (*bytecode.Program, error) {
	ck := c.ck
	c.prog = &bytecode.Program{
		Main:           -1,
		StringClass:    -1,
		StringChars:    -1,
		ClassIndex:     make(map[string]int32),
		RuntimeClasses: make(map[string]int32),
		RuntimeSites:   make(map[string]int32),
	}

	for _, sym := range ck.Classes {
		c.prog.Classes = append(c.prog.Classes, c.lowerClass(sym))
		c.prog.ClassIndex[sym.Name] = sym.ID
	}

	// Reserve method table entries so call instructions can reference
	// methods not yet compiled.
	c.prog.Methods = make([]*bytecode.Method, len(ck.Methods))
	for _, ms := range ck.Methods {
		c.prog.Methods[ms.ID] = c.methodShell(ms)
	}
	for _, ms := range ck.Methods {
		c.compileMethod(ms)
	}

	// Static initializers: one synthetic <clinit> per class that needs one.
	for _, sym := range ck.Classes {
		if m := c.compileClinit(sym); m != nil {
			c.prog.StaticInits = append(c.prog.StaticInits, m.ID)
			c.prog.Classes[sym.ID].HasInit = m.ID
		} else {
			c.prog.Classes[sym.ID].HasInit = -1
		}
	}

	// Locate main: a unique static main() with no parameters.
	for _, ms := range ck.Methods {
		if ms.Name == "main" && ms.Static && len(ms.Params) == 0 {
			if c.prog.Main >= 0 {
				return nil, fmt.Errorf("mj: multiple static main() methods (%s and %s)",
					methodName(c.prog, c.prog.Main), ms.QualifiedName())
			}
			c.prog.Main = ms.ID
		}
	}
	if c.prog.Main < 0 {
		return nil, errors.New("mj: no static main() method found")
	}

	// Well-known String plumbing for literals.
	if sSym, ok := ck.ByName["String"]; ok {
		c.prog.StringClass = sSym.ID
		if f := sSym.LookupField("chars"); f != nil && !f.Static {
			c.prog.StringChars = f.Slot
		}
	}

	// Runtime exception classes and synthetic allocation sites.
	for _, name := range runtimeExceptionNames {
		if sym, ok := ck.ByName[name]; ok {
			c.prog.RuntimeClasses[name] = sym.ID
			id := int32(len(c.prog.Sites))
			c.prog.Sites = append(c.prog.Sites, bytecode.Site{
				ID: id, Method: -1, Line: 0,
				Desc: "vm:<runtime> (new " + name + ")",
				What: name,
			})
			c.prog.RuntimeSites[name] = id
		}
	}
	return c.prog, nil
}

func methodName(p *bytecode.Program, id int32) string {
	m := p.Methods[id]
	if m.Class >= 0 {
		return p.Classes[m.Class].Name + "." + m.Name
	}
	return m.Name
}

func (c *compiler) lowerClass(sym *ClassSym) *bytecode.Class {
	bc := &bytecode.Class{
		ID:             sym.ID,
		Name:           sym.Name,
		Super:          -1,
		NumFieldSlots:  sym.NumSlots,
		NumStaticSlots: sym.NumStatic,
		Finalizable:    sym.Finalizable,
		RefSlots:       make([]bool, sym.NumSlots),
		StaticRefSlots: make([]bool, sym.NumStatic),
		SourceFile:     sym.Decl.File,
	}
	if sym.Super != nil {
		bc.Super = sym.Super.ID
	}
	for _, fs := range sym.FieldOrder {
		bc.Fields = append(bc.Fields, bytecode.FieldDef{
			Name:   fs.Name,
			Slot:   fs.Slot,
			Static: fs.Static,
			Ref:    IsRefType(fs.Type),
			Vis:    fs.Vis,
		})
	}
	// Reference maps include inherited slots.
	for cur := sym; cur != nil; cur = cur.Super {
		for _, fs := range cur.FieldOrder {
			if fs.Static {
				if cur == sym && IsRefType(fs.Type) {
					bc.StaticRefSlots[fs.Slot] = true
				}
			} else if IsRefType(fs.Type) {
				bc.RefSlots[fs.Slot] = true
			}
		}
	}
	// VTable: most-derived method per index, walking root-to-leaf.
	vcount := int32(0)
	var chain []*ClassSym
	for cur := sym; cur != nil; cur = cur.Super {
		chain = append(chain, cur)
	}
	for _, cur := range chain {
		for _, ms := range cur.MethodOrder {
			if ms.VIndex+1 > vcount {
				vcount = ms.VIndex + 1
			}
		}
	}
	bc.VTable = make([]int32, vcount)
	bc.VTableNames = make([]string, vcount)
	for i := len(chain) - 1; i >= 0; i-- { // root first, leaf overrides
		for _, ms := range chain[i].MethodOrder {
			if ms.VIndex >= 0 {
				bc.VTable[ms.VIndex] = ms.ID
				bc.VTableNames[ms.VIndex] = ms.Name
			}
		}
	}
	return bc
}

func (c *compiler) methodShell(ms *MethodSym) *bytecode.Method {
	m := &bytecode.Method{
		ID:    ms.ID,
		Class: ms.Owner.ID,
		Name:  ms.Name,
	}
	m.NumParams = len(ms.Params)
	if !ms.Static {
		m.NumParams++
	}
	if ms.Static {
		m.Flags |= bytecode.FlagStatic
	}
	if ms.IsCtor {
		m.Flags |= bytecode.FlagCtor
	}
	if ms.Finalizer {
		m.Flags |= bytecode.FlagFinalizer
	}
	return m
}

// internString returns the string pool index for s.
func (c *compiler) internString(s string) int32 {
	if i, ok := c.stringIdx[s]; ok {
		return i
	}
	i := int32(len(c.prog.Strings))
	c.prog.Strings = append(c.prog.Strings, s)
	c.stringIdx[s] = i
	return i
}

// newSite records an allocation site and returns its id.
func (c *compiler) newSite(method int32, line int32, what string) int32 {
	id := int32(len(c.prog.Sites))
	desc := fmt.Sprintf("%s:%d (new %s)", methodName(c.prog, method), line, what)
	c.prog.Sites = append(c.prog.Sites, bytecode.Site{
		ID: id, Method: method, Line: line, Desc: desc, What: what,
	})
	return id
}

// fnCompiler compiles one method body.
type fnCompiler struct {
	c     *compiler
	ms    *MethodSym
	m     *bytecode.Method
	code  []bytecode.Instr
	ex    []bytecode.ExRange
	line  int32
	temps int32 // extra slots beyond the checker's MaxLocals
	loops []*loopCtx
}

type loopCtx struct {
	breaks    []int // pcs of Jump instructions to patch to loop end
	continues []int // pcs of Jump instructions to patch to loop post/cond
}

func (c *compiler) compileMethod(ms *MethodSym) {
	f := &fnCompiler{c: c, ms: ms, m: c.prog.Methods[ms.ID]}
	if ms.Decl == nil {
		// Synthesized default constructor: empty body.
		f.m.MaxLocals = 1 // this
		f.emit(bytecode.Return, 0, 0)
		f.finish()
		return
	}
	f.compileBlock(ms.Decl.Body)
	if sameType(ms.Return, PrimType(TypeVoid)) {
		f.emit(bytecode.Return, 0, 0)
	} else {
		// Unreachable (the checker proved all paths return), but the
		// verifier requires a terminating instruction.
		f.emit(bytecode.ConstInt, 0, 0)
		f.emit(bytecode.ReturnValue, 0, 0)
	}
	f.m.MaxLocals = c.ck.MaxLocals[ms.Decl] + int(f.temps)
	f.finish()
}

// compileClinit builds the static initializer for sym, or returns nil when
// the class declares no static field initializers.
func (c *compiler) compileClinit(sym *ClassSym) *bytecode.Method {
	var inits []*FieldDecl
	for _, fd := range sym.Decl.Fields {
		if fd.Mods.Static && fd.Init != nil {
			inits = append(inits, fd)
		}
	}
	if len(inits) == 0 {
		return nil
	}
	m := &bytecode.Method{
		ID:    int32(len(c.prog.Methods)),
		Class: sym.ID,
		Name:  "<clinit>",
		Flags: bytecode.FlagStatic,
	}
	// Reserve the table entry before compiling the body: allocation sites
	// inside the initializer reference the method by id.
	c.prog.Methods = append(c.prog.Methods, m)
	f := &fnCompiler{c: c, ms: &MethodSym{Name: "<clinit>", Static: true, Owner: sym, ID: m.ID}, m: m}
	for _, fd := range inits {
		f.line = int32(fd.Pos.Line)
		f.compileExpr(fd.Init)
		fs := sym.Fields[fd.Name]
		f.emit(bytecode.PutStatic, fs.Slot, sym.ID)
	}
	f.emit(bytecode.Return, 0, 0)
	f.m.MaxLocals = int(f.temps)
	f.finish()
	return m
}

func (f *fnCompiler) finish() {
	f.m.Code = f.code
	f.m.Exceptions = f.ex
}

func (f *fnCompiler) emit(op bytecode.Op, a, b int32) int {
	pc := len(f.code)
	f.code = append(f.code, bytecode.Instr{Op: op, A: a, B: b, Line: f.line})
	return pc
}

func (f *fnCompiler) patch(pc int, target int) { f.code[pc].A = int32(target) }

func (f *fnCompiler) here() int { return len(f.code) }

// allocTemp reserves a compiler temp slot beyond the source-level locals.
func (f *fnCompiler) allocTemp() int32 {
	base := int32(f.c.ck.MaxLocals[f.ms.Decl])
	s := base + f.temps
	f.temps++
	return s
}

// Statements.

func (f *fnCompiler) compileBlock(b *Block) {
	for _, s := range b.Stmts {
		f.compileStmt(s)
	}
}

func (f *fnCompiler) compileStmt(s Stmt) {
	f.line = int32(s.Position().Line)
	switch s := s.(type) {
	case *Block:
		f.compileBlock(s)
	case *VarDecl:
		ls := f.c.ck.Locals[s]
		if s.Init != nil {
			f.compileExpr(s.Init)
			f.emit(bytecode.StoreLocal, ls.Slot, 0)
		}
	case *If:
		f.compileExpr(s.Cond)
		jf := f.emit(bytecode.JumpIfFalse, 0, 0)
		f.compileStmt(s.Then)
		if s.Else != nil {
			jend := f.emit(bytecode.Jump, 0, 0)
			f.patch(jf, f.here())
			f.compileStmt(s.Else)
			f.patch(jend, f.here())
		} else {
			f.patch(jf, f.here())
		}
	case *While:
		top := f.here()
		f.compileExpr(s.Cond)
		jf := f.emit(bytecode.JumpIfFalse, 0, 0)
		lc := &loopCtx{}
		f.loops = append(f.loops, lc)
		f.compileStmt(s.Body)
		f.loops = f.loops[:len(f.loops)-1]
		f.emit(bytecode.Jump, int32(top), 0)
		end := f.here()
		f.patch(jf, end)
		for _, pc := range lc.breaks {
			f.patch(pc, end)
		}
		for _, pc := range lc.continues {
			f.patch(pc, top)
		}
	case *For:
		if s.Init != nil {
			f.compileStmt(s.Init)
		}
		top := f.here()
		var jf int = -1
		if s.Cond != nil {
			f.compileExpr(s.Cond)
			jf = f.emit(bytecode.JumpIfFalse, 0, 0)
		}
		lc := &loopCtx{}
		f.loops = append(f.loops, lc)
		f.compileStmt(s.Body)
		f.loops = f.loops[:len(f.loops)-1]
		post := f.here()
		if s.Post != nil {
			f.compileStmt(s.Post)
		}
		f.emit(bytecode.Jump, int32(top), 0)
		end := f.here()
		if jf >= 0 {
			f.patch(jf, end)
		}
		for _, pc := range lc.breaks {
			f.patch(pc, end)
		}
		for _, pc := range lc.continues {
			f.patch(pc, post)
		}
	case *Return:
		if s.Value != nil {
			f.compileExpr(s.Value)
			f.emit(bytecode.ReturnValue, 0, 0)
		} else {
			f.emit(bytecode.Return, 0, 0)
		}
	case *Throw:
		f.compileExpr(s.Value)
		f.emit(bytecode.Throw, 0, 0)
	case *Try:
		from := f.here()
		f.compileBlock(s.Body)
		to := f.here()
		jend := f.emit(bytecode.Jump, 0, 0)
		handler := f.here()
		ls := f.c.ck.Locals[tryCatchKey(s)]
		catchClass := int32(-1)
		if sym, ok := f.c.ck.ByName[s.CatchType]; ok {
			catchClass = sym.ID
		}
		if ls != nil {
			f.emit(bytecode.StoreLocal, ls.Slot, 0)
		} else {
			f.emit(bytecode.Pop, 0, 0)
		}
		f.compileBlock(s.Catch)
		f.patch(jend, f.here())
		if to > from { // empty try bodies need no range
			f.ex = append(f.ex, bytecode.ExRange{
				From: int32(from), To: int32(to), Handler: int32(handler), CatchClass: catchClass,
			})
		}
	case *Sync:
		f.compileSync(s)
	case *Break:
		pc := f.emit(bytecode.Jump, 0, 0)
		lc := f.loops[len(f.loops)-1]
		lc.breaks = append(lc.breaks, pc)
	case *Continue:
		pc := f.emit(bytecode.Jump, 0, 0)
		lc := f.loops[len(f.loops)-1]
		lc.continues = append(lc.continues, pc)
	case *ExprStmt:
		call, ok := s.E.(*Call)
		if !ok {
			return // only reachable on erroneous programs
		}
		f.compileExpr(call)
		if !f.callReturnsVoid(call) {
			f.emit(bytecode.Pop, 0, 0)
		}
	case *Assign:
		f.compileAssign(s)
	}
}

func (f *fnCompiler) callReturnsVoid(call *Call) bool {
	info := f.c.ck.Calls[call]
	if info == nil {
		return true
	}
	if info.Kind == CallBuiltin {
		switch info.Builtin {
		case bytecode.BuiltinPrint, bytecode.BuiltinPrintln, bytecode.BuiltinPrintInt,
			bytecode.BuiltinSeedRandom, bytecode.BuiltinArrayCopy, bytecode.BuiltinGC,
			bytecode.BuiltinAbort:
			return true
		}
		return false
	}
	return sameType(info.Method.Return, PrimType(TypeVoid))
}

func (f *fnCompiler) compileSync(s *Sync) {
	objTmp := f.allocTemp()
	excTmp := f.allocTemp()
	f.compileExpr(s.Obj)
	f.emit(bytecode.Dup, 0, 0)
	f.emit(bytecode.StoreLocal, objTmp, 0)
	f.emit(bytecode.MonitorEnter, 0, 0)
	from := f.here()
	f.compileBlock(s.Body)
	to := f.here()
	f.emit(bytecode.LoadLocal, objTmp, 0)
	f.emit(bytecode.MonitorExit, 0, 0)
	jend := f.emit(bytecode.Jump, 0, 0)
	handler := f.here()
	f.emit(bytecode.StoreLocal, excTmp, 0)
	f.emit(bytecode.LoadLocal, objTmp, 0)
	f.emit(bytecode.MonitorExit, 0, 0)
	f.emit(bytecode.LoadLocal, excTmp, 0)
	f.emit(bytecode.Throw, 0, 0)
	f.patch(jend, f.here())
	if to > from {
		f.ex = append(f.ex, bytecode.ExRange{
			From: int32(from), To: int32(to), Handler: int32(handler), CatchClass: -1,
		})
	}
}

func (f *fnCompiler) compileAssign(s *Assign) {
	switch lhs := s.LHS.(type) {
	case *Ident:
		info := f.c.ck.Idents[lhs]
		switch info.Kind {
		case RefLocal:
			f.compileExpr(s.RHS)
			f.emit(bytecode.StoreLocal, info.Local.Slot, 0)
		case RefField:
			f.emit(bytecode.LoadLocal, 0, 0) // this
			f.compileExpr(s.RHS)
			f.emit(bytecode.PutField, info.Field.Slot, info.Field.Owner.ID)
		case RefStatic:
			f.compileExpr(s.RHS)
			f.emit(bytecode.PutStatic, info.Field.Slot, info.Field.Owner.ID)
		}
	case *FieldAccess:
		fi := f.c.ck.FieldAccs[lhs]
		if fi.Field.Static {
			f.compileExpr(s.RHS)
			f.emit(bytecode.PutStatic, fi.Field.Slot, fi.Field.Owner.ID)
			return
		}
		f.compileExpr(lhs.Obj)
		f.compileExpr(s.RHS)
		f.emit(bytecode.PutField, fi.Field.Slot, fi.Field.Owner.ID)
	case *Index:
		f.compileExpr(lhs.Arr)
		f.compileExpr(lhs.Idx)
		f.compileExpr(s.RHS)
		elem := f.elemKindOfArray(lhs.Arr)
		f.emit(bytecode.ArrayStore, int32(elem), 0)
	}
}

func (f *fnCompiler) elemKindOfArray(arrExpr Expr) bytecode.ElemKind {
	at, ok := f.c.ck.TypeOf(arrExpr).(*ArrayType)
	if !ok {
		return bytecode.ElemRef
	}
	return ElemKindOf(at.Elem)
}

// Expressions.

func (f *fnCompiler) compileExpr(e Expr) {
	f.line = int32(e.Position().Line)
	switch e := e.(type) {
	case *IntLit:
		f.emit(bytecode.ConstInt, int32(e.V), 0)
	case *CharLit:
		f.emit(bytecode.ConstChar, int32(e.V), 0)
	case *BoolLit:
		v := int32(0)
		if e.V {
			v = 1
		}
		f.emit(bytecode.ConstBool, v, 0)
	case *StringLit:
		f.emit(bytecode.ConstStr, f.c.internString(e.V), 0)
	case *NullLit:
		f.emit(bytecode.ConstNull, 0, 0)
	case *This:
		f.emit(bytecode.LoadLocal, 0, 0)
	case *Ident:
		info := f.c.ck.Idents[e]
		switch info.Kind {
		case RefLocal:
			f.emit(bytecode.LoadLocal, info.Local.Slot, 0)
		case RefField:
			f.emit(bytecode.LoadLocal, 0, 0)
			f.emit(bytecode.GetField, info.Field.Slot, info.Field.Owner.ID)
		case RefStatic:
			f.emit(bytecode.GetStatic, info.Field.Slot, info.Field.Owner.ID)
		case RefClass:
			// Only reachable on erroneous programs; keep the stack shape.
			f.emit(bytecode.ConstNull, 0, 0)
		}
	case *FieldAccess:
		fi := f.c.ck.FieldAccs[e]
		if fi == nil {
			f.emit(bytecode.ConstInt, 0, 0)
			return
		}
		if fi.ArrayLen {
			f.compileExpr(e.Obj)
			f.emit(bytecode.ArrayLen, 0, 0)
			return
		}
		if fi.Field.Static {
			f.emit(bytecode.GetStatic, fi.Field.Slot, fi.Field.Owner.ID)
			return
		}
		f.compileExpr(e.Obj)
		f.emit(bytecode.GetField, fi.Field.Slot, fi.Field.Owner.ID)
	case *Index:
		f.compileExpr(e.Arr)
		f.compileExpr(e.Idx)
		f.emit(bytecode.ArrayLoad, int32(f.elemKindOfArray(e.Arr)), 0)
	case *Call:
		f.compileCall(e)
	case *New:
		f.compileNew(e)
	case *NewArray:
		f.compileExpr(e.Length)
		elem := ElemKindOf(f.c.ck.ResolveTypeExpr(e.Elem))
		site := f.c.newSite(f.ms.ID, f.line, e.Elem.String()+"[]")
		f.emit(bytecode.NewArray, int32(elem), site)
	case *Cast:
		f.compileExpr(e.E)
		if sym, ok := f.c.ck.ByName[e.Class]; ok {
			f.emit(bytecode.CheckCast, sym.ID, 0)
		}
	case *Binary:
		f.compileBinary(e)
	case *Unary:
		f.compileExpr(e.E)
		if e.Op == TokMinus {
			f.emit(bytecode.Neg, 0, 0)
		} else {
			f.emit(bytecode.Not, 0, 0)
		}
	}
}

func (f *fnCompiler) compileCall(e *Call) {
	info := f.c.ck.Calls[e]
	if info == nil {
		for range e.Args {
			f.emit(bytecode.Pop, 0, 0)
		}
		f.emit(bytecode.ConstInt, 0, 0)
		return
	}
	line := f.line
	switch info.Kind {
	case CallStatic:
		for _, a := range e.Args {
			f.compileExpr(a)
		}
		f.line = line
		f.emit(bytecode.InvokeStatic, info.Method.ID, 0)
	case CallVirtual:
		if info.ImplicitThis {
			f.emit(bytecode.LoadLocal, 0, 0)
		} else {
			f.compileExpr(e.Recv)
		}
		for _, a := range e.Args {
			f.compileExpr(a)
		}
		f.line = line
		f.emit(bytecode.InvokeVirtual, info.Method.VIndex, info.RecvClass.ID)
	case CallBuiltin:
		for _, a := range e.Args {
			f.compileExpr(a)
		}
		f.line = line
		f.emit(bytecode.CallBuiltin, int32(info.Builtin), 0)
	}
}

func (f *fnCompiler) compileNew(e *New) {
	sym := f.c.ck.NewClasses[e]
	if sym == nil {
		f.emit(bytecode.ConstNull, 0, 0)
		return
	}
	line := f.line
	site := f.c.newSite(f.ms.ID, line, sym.Name)
	f.emit(bytecode.NewObject, sym.ID, site)
	ctor := f.c.ck.NewCtors[e]
	f.emit(bytecode.Dup, 0, 0)
	for _, a := range e.Args {
		f.compileExpr(a)
	}
	f.line = line
	f.emit(bytecode.InvokeSpecial, ctor.ID, 0)
}

func (f *fnCompiler) compileBinary(e *Binary) {
	switch e.Op {
	case TokAndAnd:
		f.compileExpr(e.L)
		jf := f.emit(bytecode.JumpIfFalse, 0, 0)
		f.compileExpr(e.R)
		jend := f.emit(bytecode.Jump, 0, 0)
		f.patch(jf, f.here())
		f.emit(bytecode.ConstBool, 0, 0)
		f.patch(jend, f.here())
		return
	case TokOrOr:
		f.compileExpr(e.L)
		jt := f.emit(bytecode.JumpIfTrue, 0, 0)
		f.compileExpr(e.R)
		jend := f.emit(bytecode.Jump, 0, 0)
		f.patch(jt, f.here())
		f.emit(bytecode.ConstBool, 1, 0)
		f.patch(jend, f.here())
		return
	}
	f.compileExpr(e.L)
	f.compileExpr(e.R)
	refCmp := IsRefType(f.c.ck.TypeOf(e.L)) || IsRefType(f.c.ck.TypeOf(e.R))
	switch e.Op {
	case TokPlus:
		f.emit(bytecode.Add, 0, 0)
	case TokMinus:
		f.emit(bytecode.Sub, 0, 0)
	case TokStar:
		f.emit(bytecode.Mul, 0, 0)
	case TokSlash:
		f.emit(bytecode.Div, 0, 0)
	case TokPercent:
		f.emit(bytecode.Rem, 0, 0)
	case TokLt:
		f.emit(bytecode.CmpLT, 0, 0)
	case TokLe:
		f.emit(bytecode.CmpLE, 0, 0)
	case TokGt:
		f.emit(bytecode.CmpGT, 0, 0)
	case TokGe:
		f.emit(bytecode.CmpGE, 0, 0)
	case TokEq:
		if refCmp {
			f.emit(bytecode.RefEQ, 0, 0)
		} else {
			f.emit(bytecode.CmpEQ, 0, 0)
		}
	case TokNe:
		if refCmp {
			f.emit(bytecode.RefNE, 0, 0)
		} else {
			f.emit(bytecode.CmpNE, 0, 0)
		}
	}
}
