package mj

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, errs := Parse("t.mj", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func TestParseClassStructure(t *testing.T) {
	f := parseOK(t, `
class Animal {
    protected int legs;
    static int population;

    Animal(int l) { legs = l; }

    int getLegs() { return legs; }
}

class Dog extends Animal {
    Dog() { legs = 4; }
}`)
	if len(f.Classes) != 2 {
		t.Fatalf("classes = %d", len(f.Classes))
	}
	animal := f.Classes[0]
	if animal.Name != "Animal" || animal.Extends != "" {
		t.Errorf("animal = %q extends %q", animal.Name, animal.Extends)
	}
	if len(animal.Fields) != 2 || len(animal.Methods) != 2 {
		t.Errorf("animal members: %d fields, %d methods", len(animal.Fields), len(animal.Methods))
	}
	if !animal.Methods[0].IsCtor {
		t.Error("first method should be the constructor")
	}
	if f.Classes[1].Extends != "Animal" {
		t.Errorf("dog extends %q", f.Classes[1].Extends)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parseOK(t, `
class M {
    static int f() { return 1 + 2 * 3 - 4 / 2; }
}`)
	ret := f.Classes[0].Methods[0].Body.Stmts[0].(*Return)
	// ((1 + (2*3)) - (4/2))
	sub, ok := ret.Value.(*Binary)
	if !ok || sub.Op != TokMinus {
		t.Fatalf("top op = %#v", ret.Value)
	}
	add, ok := sub.L.(*Binary)
	if !ok || add.Op != TokPlus {
		t.Fatalf("left op = %#v", sub.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != TokStar {
		t.Fatalf("mul = %#v", add.R)
	}
	if div, ok := sub.R.(*Binary); !ok || div.Op != TokSlash {
		t.Fatalf("div = %#v", sub.R)
	}
}

func TestParseDeclVsExprDisambiguation(t *testing.T) {
	f := parseOK(t, `
class Foo { int v; }
class M {
    static void go() {
        Foo a;
        Foo[] b;
        Foo[][] c;
        int d = 1;
        d = d + 1;
        helper(d);
    }
    static void helper(int x) { }
}`)
	stmts := f.Classes[1].Methods[0].Body.Stmts
	kinds := []string{"*mj.VarDecl", "*mj.VarDecl", "*mj.VarDecl", "*mj.VarDecl", "*mj.Assign", "*mj.ExprStmt"}
	if len(stmts) != len(kinds) {
		t.Fatalf("stmts = %d, want %d", len(stmts), len(kinds))
	}
	for i, s := range stmts {
		got := typeName(s)
		if got != kinds[i] {
			t.Errorf("stmt %d = %s, want %s", i, got, kinds[i])
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *VarDecl:
		return "*mj.VarDecl"
	case *Assign:
		return "*mj.Assign"
	case *ExprStmt:
		return "*mj.ExprStmt"
	default:
		return "?"
	}
}

func TestParseCastVsParen(t *testing.T) {
	f := parseOK(t, `
class Foo { int v; }
class M {
    static int go(Object o, int a, int b) {
        Foo f = (Foo) o;
        int x = (a) + b;
        int y = (a + b) * 2;
        return f.v + x + y;
    }
}`)
	stmts := f.Classes[1].Methods[0].Body.Stmts
	if _, ok := stmts[0].(*VarDecl).Init.(*Cast); !ok {
		t.Errorf("expected cast, got %#v", stmts[0].(*VarDecl).Init)
	}
	if _, ok := stmts[1].(*VarDecl).Init.(*Binary); !ok {
		t.Errorf("(a) + b must parse as binary, got %#v", stmts[1].(*VarDecl).Init)
	}
}

func TestParseNewForms(t *testing.T) {
	f := parseOK(t, `
class Foo { Foo(int a) { } }
class M {
    static void go() {
        Foo f = new Foo(1);
        int[] a = new int[10];
        int[][] b = new int[5][];
        Foo[] c = new Foo[3];
    }
}`)
	stmts := f.Classes[1].Methods[0].Body.Stmts
	if n, ok := stmts[0].(*VarDecl).Init.(*New); !ok || n.Class != "Foo" {
		t.Errorf("new Foo: %#v", stmts[0].(*VarDecl).Init)
	}
	na := stmts[2].(*VarDecl).Init.(*NewArray)
	if na.Elem.Base != "int" || na.Elem.Dims != 1 {
		t.Errorf("new int[5][] elem = %v", na.Elem)
	}
}

func TestParseControlFlow(t *testing.T) {
	parseOK(t, `
class M {
    static void go(int n) {
        if (n > 0) { go(n - 1); } else { }
        while (n < 10) { n = n + 1; }
        for (int i = 0; i < n; i = i + 1) {
            if (i == 5) { continue; }
            if (i == 8) { break; }
        }
        try {
            throw new Object();
        } catch (Object e) {
            go(0);
        }
        synchronized (new Object()) {
            n = 0;
        }
    }
}`)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`class { }`, "expected identifier"},
		{`class A extends { }`, "expected identifier"},
		{`class A { int f( { }`, "expected a type"},
		{`class A { void m() { 1 + ; } }`, "expected an expression"},
		{`class A { void m() { if x { } } }`, "expected '('"},
		{`class A { void m() { x = ; } }`, "expected an expression"},
	}
	for _, c := range cases {
		_, errs := Parse("t.mj", c.src)
		if len(errs) == 0 {
			t.Errorf("no error for %q", c.src)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("source %q: errors %v do not mention %q", c.src, errs, c.want)
		}
	}
}

func TestCountStatements(t *testing.T) {
	f := parseOK(t, `
class M {
    static int x = 5;
    static void go(int n) {
        int a = 1;
        if (n > 0) {
            a = 2;
        } else {
            a = 3;
        }
        while (n > 0) { n = n - 1; }
        printInt(a);
    }
}`)
	// x init (1) + decl (1) + if (1) + two assigns (2) + while (1) +
	// body assign (1) + call (1) = 8
	if n := CountStatements(f.Classes[0]); n != 8 {
		t.Errorf("statements = %d, want 8", n)
	}
}
