package mj

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserRobustnessRandomBytes feeds noise to the parser: it must
// neither panic nor fail to terminate (the error-recovery paths guarantee
// token progress).
func TestParserRobustnessRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("class extends if else while for return new null this " +
		"int bool char void static public private { } ( ) [ ] ; , . + - * / % " +
		"== != <= >= && || ! = \"str\" 'c' 123 ident Foo try catch throw synchronized")
	for i := 0; i < 500; i++ {
		n := rng.Intn(200)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		// Must terminate; errors are expected and fine.
		Parse("fuzz.mj", b.String())
	}
}

// TestParserRobustnessMutations deletes, duplicates and swaps tokens of a
// real program and re-parses: no panics, no hangs.
func TestParserRobustnessMutations(t *testing.T) {
	base := `
class Node {
    Node next;
    int v;
    Node(int x) { v = x; }
    int sum() {
        if (next == null) { return v; }
        return v + next.sum();
    }
}
class Main {
    static void main() {
        Node n = new Node(1);
        n.next = new Node(2);
        try {
            printInt(n.sum());
        } catch (Throwable e) {
            println("oops");
        }
    }
}`
	toks, _ := LexAll("m.mj", base)
	words := make([]string, 0, len(toks))
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		words = append(words, tokenSpelling(tok))
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		mutated := append([]string(nil), words...)
		switch rng.Intn(3) {
		case 0: // delete
			if len(mutated) > 1 {
				k := rng.Intn(len(mutated))
				mutated = append(mutated[:k], mutated[k+1:]...)
			}
		case 1: // duplicate
			k := rng.Intn(len(mutated))
			mutated = append(mutated[:k+1], mutated[k:]...)
		case 2: // swap
			a, b := rng.Intn(len(mutated)), rng.Intn(len(mutated))
			mutated[a], mutated[b] = mutated[b], mutated[a]
		}
		src := strings.Join(mutated, " ")
		f, _ := Parse("mut.mj", src)
		if f != nil {
			// Whatever parsed must also survive checking.
			Check(&Program{Files: []*File{f}})
		}
	}
}

func tokenSpelling(t Token) string {
	switch t.Kind {
	case TokIdent:
		return t.Text
	case TokIntLit:
		return t.Text
	case TokCharLit:
		return "'x'"
	case TokStringLit:
		return `"s"`
	default:
		s := t.Kind.String()
		return strings.Trim(s, "'")
	}
}
