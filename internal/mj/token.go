// Package mj implements the MiniJava front end: lexer, parser, semantic
// analysis and a compiler to dragprof bytecode.
//
// MiniJava is the Java subset the reproduction's benchmarks are written in.
// It has classes with single inheritance and virtual dispatch, instance and
// static fields with access modifiers, arrays, char/int/bool primitives,
// String objects backed by char arrays (as in the JDK the paper profiles),
// exceptions with try/catch, synchronized blocks (monitorenter/monitorexit),
// and finalizers — every feature the paper's instrumentation treats as an
// object use or that its rewrites manipulate.
package mj

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokIntLit
	TokCharLit
	TokStringLit

	// Keywords.
	TokClass
	TokExtends
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokNew
	TokNull
	TokThis
	TokTrue
	TokFalse
	TokInt
	TokBool
	TokChar
	TokVoid
	TokStatic
	TokPublic
	TokPrivate
	TokProtected
	TokThrow
	TokTry
	TokCatch
	TokSynchronized
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokBang
	TokAndAnd
	TokOrOr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAssign
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot
)

var tokenNames = map[TokenKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokIntLit: "integer literal",
	TokCharLit: "char literal", TokStringLit: "string literal",
	TokClass: "'class'", TokExtends: "'extends'", TokIf: "'if'", TokElse: "'else'",
	TokWhile: "'while'", TokFor: "'for'", TokReturn: "'return'", TokNew: "'new'",
	TokNull: "'null'", TokThis: "'this'", TokTrue: "'true'", TokFalse: "'false'",
	TokInt: "'int'", TokBool: "'bool'", TokChar: "'char'", TokVoid: "'void'",
	TokStatic: "'static'", TokPublic: "'public'", TokPrivate: "'private'",
	TokProtected: "'protected'", TokThrow: "'throw'", TokTry: "'try'",
	TokCatch: "'catch'", TokSynchronized: "'synchronized'",
	TokBreak: "'break'", TokContinue: "'continue'",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokPercent: "'%'", TokBang: "'!'", TokAndAnd: "'&&'", TokOrOr: "'||'",
	TokEq: "'=='", TokNe: "'!='", TokLt: "'<'", TokLe: "'<='", TokGt: "'>'",
	TokGe: "'>='", TokAssign: "'='", TokLParen: "'('", TokRParen: "')'",
	TokLBrace: "'{'", TokRBrace: "'}'", TokLBracket: "'['", TokRBracket: "']'",
	TokSemi: "';'", TokComma: "','", TokDot: "'.'",
}

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"class": TokClass, "extends": TokExtends, "if": TokIf, "else": TokElse,
	"while": TokWhile, "for": TokFor, "return": TokReturn, "new": TokNew,
	"null": TokNull, "this": TokThis, "true": TokTrue, "false": TokFalse,
	"int": TokInt, "bool": TokBool, "boolean": TokBool, "char": TokChar,
	"void": TokVoid, "static": TokStatic, "public": TokPublic,
	"private": TokPrivate, "protected": TokProtected, "throw": TokThrow,
	"try": TokTry, "catch": TokCatch, "synchronized": TokSynchronized,
	"break": TokBreak, "continue": TokContinue,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // identifier spelling or literal text (decoded for strings/chars)
	Int  int64  // value for TokIntLit and TokCharLit
	Pos  Pos
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
