package mj

import (
	"dragprof/internal/bytecode"
)

// Check runs semantic analysis over a parsed program: it builds the class
// table, lays out field slots and vtables, resolves every name, and type
// checks every method body. It returns the annotations the compiler and the
// static analyses consume, plus all diagnostics found.
func Check(prog *Program) (*Checked, []error) {
	ck := &checker{
		out: &Checked{
			Prog:       prog,
			ByName:     make(map[string]*ClassSym),
			ExprTypes:  make(map[Expr]Type),
			Idents:     make(map[*Ident]*IdentInfo),
			Calls:      make(map[*Call]*CallInfo),
			FieldAccs:  make(map[*FieldAccess]*FieldInfo),
			NewCtors:   make(map[*New]*MethodSym),
			NewClasses: make(map[*New]*ClassSym),
			Locals:     make(map[*VarDecl]*LocalSym),
			ParamSyms:  make(map[*MethodDecl][]*LocalSym),
			MaxLocals:  make(map[*MethodDecl]int),
		},
	}
	ck.declareClasses(prog)
	ck.resolveSupers()
	ck.declareMembers()
	ck.layout()
	ck.checkBodies()
	return ck.out, ck.errs
}

type checker struct {
	out  *Checked
	errs []error

	// Current method context during body checking.
	curClass  *ClassSym
	curMethod *MethodSym
	scopes    []map[string]*LocalSym
	nextSlot  int32
	maxSlot   int32
	loopDepth int
}

func (ck *checker) errorf(pos Pos, format string, args ...any) {
	ck.errs = append(ck.errs, errf(pos, format, args...))
}

// declareClasses creates a symbol per class declaration.
func (ck *checker) declareClasses(prog *Program) {
	for _, c := range prog.Classes() {
		if _, dup := ck.out.ByName[c.Name]; dup {
			ck.errorf(c.Pos, "duplicate class %s", c.Name)
			continue
		}
		sym := &ClassSym{
			Name:    c.Name,
			Decl:    c,
			ID:      int32(len(ck.out.Classes)),
			Fields:  make(map[string]*FieldSym),
			Methods: make(map[string]*MethodSym),
		}
		sym.Type = &ClassType{Sym: sym}
		ck.out.ByName[c.Name] = sym
		ck.out.Classes = append(ck.out.Classes, sym)
	}
}

func (ck *checker) resolveSupers() {
	for _, sym := range ck.out.Classes {
		ext := sym.Decl.Extends
		if ext == "" {
			// Classes without an extends clause implicitly extend
			// Object when the program declares one (the runtime
			// library does), giving collections a universal element
			// type as in Java.
			if root, ok := ck.out.ByName["Object"]; ok && root != sym {
				sym.Super = root
			}
			continue
		}
		super, ok := ck.out.ByName[ext]
		if !ok {
			ck.errorf(sym.Decl.Pos, "class %s extends unknown class %s", sym.Name, ext)
			continue
		}
		sym.Super = super
	}
	// Detect inheritance cycles; break them to keep later phases safe.
	for _, sym := range ck.out.Classes {
		slow, fast := sym, sym
		for fast != nil && fast.Super != nil {
			slow, fast = slow.Super, fast.Super.Super
			if slow == fast {
				ck.errorf(sym.Decl.Pos, "inheritance cycle involving class %s", sym.Name)
				sym.Super = nil
				break
			}
		}
	}
}

func (ck *checker) resolveType(t TypeExpr) Type {
	if typ := ck.out.ResolveTypeExpr(t); typ != nil {
		return typ
	}
	ck.errorf(t.Pos, "unknown type %s", t.Base)
	return TypeInt
}

func (ck *checker) declareMembers() {
	for _, sym := range ck.out.Classes {
		for _, fd := range sym.Decl.Fields {
			if _, dup := sym.Fields[fd.Name]; dup {
				ck.errorf(fd.Pos, "duplicate field %s in class %s", fd.Name, sym.Name)
				continue
			}
			fs := &FieldSym{
				Name:   fd.Name,
				Type:   ck.resolveType(fd.Type),
				Static: fd.Mods.Static,
				Vis:    fd.Mods.Vis,
				Owner:  sym,
				Decl:   fd,
			}
			sym.Fields[fd.Name] = fs
			sym.FieldOrder = append(sym.FieldOrder, fs)
		}
		for _, md := range sym.Decl.Methods {
			name := md.Name
			if _, dup := sym.Methods[name]; dup {
				ck.errorf(md.Pos, "duplicate method %s in class %s (MiniJava has no overloading)", name, sym.Name)
				continue
			}
			ms := &MethodSym{
				Name:   name,
				Return: ck.resolveType(md.Return),
				Static: md.Mods.Static,
				IsCtor: md.IsCtor,
				Vis:    md.Mods.Vis,
				Owner:  sym,
				Decl:   md,
				VIndex: -1,
			}
			for _, p := range md.Params {
				ms.Params = append(ms.Params, ck.resolveType(p.Type))
			}
			if !ms.Static && !ms.IsCtor && name == "finalize" && len(ms.Params) == 0 && sameType(ms.Return, PrimType(TypeVoid)) {
				ms.Finalizer = true
			}
			if ms.IsCtor && ms.Static {
				ck.errorf(md.Pos, "constructor of %s cannot be static", sym.Name)
				ms.Static = false
			}
			sym.Methods[name] = ms
			sym.MethodOrder = append(sym.MethodOrder, ms)
		}
		// Synthesize a default constructor when none is declared.
		if _, has := sym.Methods["<init>"]; !has {
			ms := &MethodSym{
				Name:   "<init>",
				Return: PrimType(TypeVoid),
				IsCtor: true,
				Owner:  sym,
				VIndex: -1,
			}
			sym.Methods["<init>"] = ms
			sym.MethodOrder = append(sym.MethodOrder, ms)
		}
	}
	// Assign global method ids in class-declaration order.
	for _, sym := range ck.out.Classes {
		for _, ms := range sym.MethodOrder {
			ms.ID = int32(len(ck.out.Methods))
			ck.out.Methods = append(ck.out.Methods, ms)
		}
	}
}

// layout assigns instance field slots, static slots, vtable indices and
// finalizability, processing superclasses before subclasses.
func (ck *checker) layout() {
	done := make(map[*ClassSym]bool)
	var lay func(sym *ClassSym)
	lay = func(sym *ClassSym) {
		if done[sym] {
			return
		}
		done[sym] = true
		var base int32
		var vbase int32
		vtable := map[string]int32{}
		if sym.Super != nil {
			lay(sym.Super)
			base = sym.Super.NumSlots
			sym.Finalizable = sym.Super.Finalizable
			// Inherit the super vtable layout.
			for cur := sym.Super; cur != nil; cur = cur.Super {
				for _, ms := range cur.MethodOrder {
					if ms.VIndex >= 0 {
						if _, seen := vtable[ms.Name]; !seen {
							vtable[ms.Name] = ms.VIndex
							if ms.VIndex+1 > vbase {
								vbase = ms.VIndex + 1
							}
						}
					}
				}
			}
		}
		var static int32
		for _, fs := range sym.FieldOrder {
			if fs.Static {
				fs.Slot = static
				static++
			} else {
				fs.Slot = base
				base++
			}
		}
		sym.NumSlots = base
		sym.NumStatic = static
		for _, ms := range sym.MethodOrder {
			if ms.Static || ms.IsCtor {
				continue
			}
			if idx, ok := vtable[ms.Name]; ok {
				ms.VIndex = idx // override
			} else {
				ms.VIndex = vbase
				vtable[ms.Name] = vbase
				vbase++
			}
			if ms.Finalizer {
				sym.Finalizable = true
			}
		}
	}
	for _, sym := range ck.out.Classes {
		lay(sym)
	}
}

// Body checking.

func (ck *checker) checkBodies() {
	for _, sym := range ck.out.Classes {
		ck.curClass = sym
		for _, fd := range sym.Decl.Fields {
			if fd.Init == nil {
				continue
			}
			if !fd.Mods.Static {
				ck.errorf(fd.Pos, "only static fields may have initializers (field %s)", fd.Name)
				continue
			}
			// Static initializers run in a synthetic static context.
			ck.curMethod = &MethodSym{Name: "<clinit>", Static: true, Owner: sym, Return: PrimType(TypeVoid)}
			ck.pushScope()
			t := ck.checkExpr(fd.Init)
			fs := sym.Fields[fd.Name]
			if fs != nil && !ck.assignable(fs.Type, t) {
				ck.errorf(fd.Pos, "cannot initialize %s field %s with %s", fs.Type, fd.Name, t)
			}
			ck.popScope()
		}
		for _, ms := range sym.MethodOrder {
			if ms.Decl == nil {
				continue // synthesized default ctor
			}
			ck.checkMethod(sym, ms)
		}
	}
}

func (ck *checker) checkMethod(sym *ClassSym, ms *MethodSym) {
	ck.curMethod = ms
	ck.nextSlot = 0
	ck.maxSlot = 0
	ck.scopes = nil
	ck.pushScope()

	var params []*LocalSym
	if !ms.Static {
		this := &LocalSym{Name: "this", Type: sym.Type, Slot: ck.allocSlot(), IsParam: true, Pos: ms.Decl.Pos}
		ck.declare(this)
		params = append(params, this)
	}
	for i, p := range ms.Decl.Params {
		ls := &LocalSym{Name: p.Name, Type: ms.Params[i], Slot: ck.allocSlot(), IsParam: true, Pos: p.Pos}
		if !ck.declare(ls) {
			ck.errorf(p.Pos, "duplicate parameter %s", p.Name)
		}
		params = append(params, ls)
	}
	ck.out.ParamSyms[ms.Decl] = params

	ck.checkBlock(ms.Decl.Body)
	ck.popScope()
	ck.out.MaxLocals[ms.Decl] = int(ck.maxSlot)

	if !sameType(ms.Return, PrimType(TypeVoid)) && !blockReturns(ms.Decl.Body) {
		ck.errorf(ms.Decl.Pos, "method %s: missing return statement on some path", ms.QualifiedName())
	}
}

func (ck *checker) allocSlot() int32 {
	s := ck.nextSlot
	ck.nextSlot++
	if ck.nextSlot > ck.maxSlot {
		ck.maxSlot = ck.nextSlot
	}
	return s
}

func (ck *checker) pushScope() { ck.scopes = append(ck.scopes, map[string]*LocalSym{}) }
func (ck *checker) popScope()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) declare(ls *LocalSym) bool {
	top := ck.scopes[len(ck.scopes)-1]
	if _, dup := top[ls.Name]; dup {
		return false
	}
	top[ls.Name] = ls
	return true
}

func (ck *checker) lookupLocal(name string) *LocalSym {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if ls, ok := ck.scopes[i][name]; ok {
			return ls
		}
	}
	return nil
}

// Statements.

func (ck *checker) checkBlock(b *Block) {
	ck.pushScope()
	for _, s := range b.Stmts {
		ck.checkStmt(s)
	}
	ck.popScope()
}

func (ck *checker) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		ck.checkBlock(s)
	case *VarDecl:
		ck.checkVarDecl(s)
	case *If:
		ck.checkCond(s.Cond)
		ck.checkStmt(s.Then)
		if s.Else != nil {
			ck.checkStmt(s.Else)
		}
	case *While:
		ck.checkCond(s.Cond)
		ck.loopDepth++
		ck.checkStmt(s.Body)
		ck.loopDepth--
	case *For:
		ck.pushScope()
		if s.Init != nil {
			ck.checkStmt(s.Init)
		}
		if s.Cond != nil {
			ck.checkCond(s.Cond)
		}
		if s.Post != nil {
			ck.checkStmt(s.Post)
		}
		ck.loopDepth++
		ck.checkStmt(s.Body)
		ck.loopDepth--
		ck.popScope()
	case *Return:
		ret := ck.curMethod.Return
		if s.Value == nil {
			if !sameType(ret, PrimType(TypeVoid)) {
				ck.errorf(s.Pos, "method %s must return %s", ck.curMethod.QualifiedName(), ret)
			}
			return
		}
		t := ck.checkExpr(s.Value)
		if sameType(ret, PrimType(TypeVoid)) {
			ck.errorf(s.Pos, "void method %s cannot return a value", ck.curMethod.QualifiedName())
		} else if !ck.assignable(ret, t) {
			ck.errorf(s.Pos, "cannot return %s from method returning %s", t, ret)
		}
	case *Throw:
		t := ck.checkExpr(s.Value)
		ck.requireThrowable(s.Pos, t)
	case *Try:
		ck.checkBlock(s.Body)
		csym, ok := ck.out.ByName[s.CatchType]
		if !ok {
			ck.errorf(s.Pos, "unknown exception class %s", s.CatchType)
		} else {
			ck.requireThrowable(s.Pos, csym.Type)
		}
		ck.pushScope()
		if ok {
			ls := &LocalSym{Name: s.CatchVar, Type: csym.Type, Slot: ck.allocSlot(), Pos: s.Pos}
			ck.declare(ls)
			// The compiler finds the catch variable through Locals
			// keyed by a synthetic VarDecl; stash it under the Try.
			ck.out.Locals[tryCatchKey(s)] = ls
		}
		ck.checkBlock(s.Catch)
		ck.popScope()
	case *Sync:
		t := ck.checkExpr(s.Obj)
		if !IsRefType(t) {
			ck.errorf(s.Pos, "synchronized requires an object, found %s", t)
		}
		ck.checkBlock(s.Body)
	case *Break:
		if ck.loopDepth == 0 {
			ck.errorf(s.Pos, "break outside a loop")
		}
	case *Continue:
		if ck.loopDepth == 0 {
			ck.errorf(s.Pos, "continue outside a loop")
		}
	case *ExprStmt:
		if _, ok := s.E.(*Call); !ok {
			ck.errorf(s.Pos, "expression statement must be a call")
		}
		ck.checkExpr(s.E)
	case *Assign:
		ck.checkAssign(s)
	}
}

// tryCatchKey returns a stable synthetic VarDecl used to key the catch
// variable's LocalSym in Checked.Locals.
func tryCatchKey(t *Try) *VarDecl {
	if t.catchKey == nil {
		t.catchKey = &VarDecl{Pos: t.Pos, Name: t.CatchVar}
	}
	return t.catchKey
}

func (ck *checker) checkVarDecl(d *VarDecl) {
	t := ck.resolveType(d.Type)
	ls := &LocalSym{Name: d.Name, Type: t, Slot: ck.allocSlot(), Pos: d.Pos}
	if !ck.declare(ls) {
		ck.errorf(d.Pos, "duplicate local variable %s", d.Name)
	}
	ck.out.Locals[d] = ls
	if d.Init != nil {
		it := ck.checkExpr(d.Init)
		if !ck.assignable(t, it) {
			ck.errorf(d.Pos, "cannot initialize %s %s with %s", t, d.Name, it)
		}
	}
}

func (ck *checker) checkCond(e Expr) {
	t := ck.checkExpr(e)
	if !sameType(t, PrimType(TypeBool)) {
		ck.errorf(e.Position(), "condition must be bool, found %s", t)
	}
}

func (ck *checker) checkAssign(s *Assign) {
	lt := ck.checkLValue(s.LHS)
	rt := ck.checkExpr(s.RHS)
	if !ck.assignable(lt, rt) {
		ck.errorf(s.Pos, "cannot assign %s to %s", rt, lt)
	}
}

func (ck *checker) checkLValue(e Expr) Type {
	switch e := e.(type) {
	case *Ident:
		t := ck.checkExpr(e)
		info := ck.out.Idents[e]
		if info != nil && info.Kind == RefClass {
			ck.errorf(e.Pos, "cannot assign to class %s", e.Name)
		}
		return t
	case *FieldAccess:
		t := ck.checkExpr(e)
		if fi := ck.out.FieldAccs[e]; fi != nil && fi.ArrayLen {
			ck.errorf(e.Pos, "cannot assign to array length")
		}
		return t
	case *Index:
		return ck.checkExpr(e)
	default:
		ck.errorf(e.Position(), "invalid assignment target")
		return ck.checkExpr(e)
	}
}

func (ck *checker) requireThrowable(pos Pos, t Type) {
	ct, ok := t.(*ClassType)
	if !ok {
		ck.errorf(pos, "throw requires an object, found %s", t)
		return
	}
	if root, has := ck.out.ByName["Throwable"]; has && !ct.Sym.IsSubclassOf(root) {
		ck.errorf(pos, "%s is not a subclass of Throwable", ct.Sym.Name)
	}
}

// assignable reports whether src can be stored into dst.
func (ck *checker) assignable(dst, src Type) bool {
	if sameType(dst, src) {
		return true
	}
	if IsRefType(dst) && sameType(src, PrimType(TypeNull)) {
		return true
	}
	// int <-> char widen/narrow implicitly (documented relaxation).
	if isNumeric(dst) && isNumeric(src) {
		return true
	}
	dc, ok1 := dst.(*ClassType)
	sc, ok2 := src.(*ClassType)
	if ok1 && ok2 {
		return sc.Sym.IsSubclassOf(dc.Sym)
	}
	return false
}

// Expressions.

func (ck *checker) checkExpr(e Expr) Type {
	t := ck.exprType(e)
	ck.out.ExprTypes[e] = t
	return t
}

func (ck *checker) exprType(e Expr) Type {
	switch e := e.(type) {
	case *IntLit:
		return PrimType(TypeInt)
	case *CharLit:
		return PrimType(TypeChar)
	case *BoolLit:
		return PrimType(TypeBool)
	case *StringLit:
		if sym, ok := ck.out.ByName["String"]; ok {
			return sym.Type
		}
		ck.errorf(e.Pos, "string literals require a String class (include the runtime library)")
		return PrimType(TypeNull)
	case *NullLit:
		return PrimType(TypeNull)
	case *This:
		if ck.curMethod != nil && ck.curMethod.Static {
			ck.errorf(e.Pos, "this cannot appear in a static context")
		}
		return ck.curClass.Type
	case *Ident:
		return ck.checkIdent(e)
	case *FieldAccess:
		return ck.checkFieldAccess(e)
	case *Index:
		at := ck.checkExpr(e.Arr)
		it := ck.checkExpr(e.Idx)
		if !isNumeric(it) {
			ck.errorf(e.Pos, "array index must be int, found %s", it)
		}
		arr, ok := at.(*ArrayType)
		if !ok {
			ck.errorf(e.Pos, "cannot index %s", at)
			return PrimType(TypeInt)
		}
		return arr.Elem
	case *Call:
		return ck.checkCall(e)
	case *New:
		return ck.checkNew(e)
	case *NewArray:
		lt := ck.checkExpr(e.Length)
		if !isNumeric(lt) {
			ck.errorf(e.Pos, "array length must be int, found %s", lt)
		}
		elem := ck.resolveType(e.Elem)
		return &ArrayType{Elem: elem}
	case *Cast:
		et := ck.checkExpr(e.E)
		sym, ok := ck.out.ByName[e.Class]
		if !ok {
			ck.errorf(e.Pos, "cast to unknown class %s", e.Class)
			return PrimType(TypeNull)
		}
		if !IsRefType(et) {
			ck.errorf(e.Pos, "cannot cast %s to %s", et, e.Class)
		}
		return sym.Type
	case *Binary:
		return ck.checkBinary(e)
	case *Unary:
		t := ck.checkExpr(e.E)
		switch e.Op {
		case TokMinus:
			if !isNumeric(t) {
				ck.errorf(e.Pos, "operator - requires int, found %s", t)
			}
			return PrimType(TypeInt)
		case TokBang:
			if !sameType(t, PrimType(TypeBool)) {
				ck.errorf(e.Pos, "operator ! requires bool, found %s", t)
			}
			return PrimType(TypeBool)
		}
	}
	ck.errorf(e.Position(), "internal: unhandled expression %T", e)
	return PrimType(TypeInt)
}

func (ck *checker) checkIdent(e *Ident) Type {
	if ls := ck.lookupLocal(e.Name); ls != nil {
		ck.out.Idents[e] = &IdentInfo{Kind: RefLocal, Local: ls}
		return ls.Type
	}
	if fs := ck.curClass.LookupField(e.Name); fs != nil {
		ck.checkVisible(e.Pos, fs.Vis, fs.Owner, fs.Name)
		if fs.Static {
			ck.out.Idents[e] = &IdentInfo{Kind: RefStatic, Field: fs}
			return fs.Type
		}
		if ck.curMethod != nil && ck.curMethod.Static {
			ck.errorf(e.Pos, "instance field %s cannot be used in a static context", e.Name)
		}
		ck.out.Idents[e] = &IdentInfo{Kind: RefField, Field: fs}
		return fs.Type
	}
	if sym, ok := ck.out.ByName[e.Name]; ok {
		ck.out.Idents[e] = &IdentInfo{Kind: RefClass, Class: sym}
		return sym.Type // only meaningful as a qualifier
	}
	ck.errorf(e.Pos, "undefined name %s", e.Name)
	ck.out.Idents[e] = &IdentInfo{Kind: RefLocal, Local: &LocalSym{Name: e.Name, Type: PrimType(TypeInt)}}
	return PrimType(TypeInt)
}

func (ck *checker) checkVisible(pos Pos, vis bytecode.Visibility, owner *ClassSym, name string) {
	if vis == bytecode.VisPrivate && owner != ck.curClass {
		ck.errorf(pos, "%s.%s is private", owner.Name, name)
	}
}

func (ck *checker) checkFieldAccess(e *FieldAccess) Type {
	// Static access through a class name?
	if id, ok := e.Obj.(*Ident); ok {
		if ck.lookupLocal(id.Name) == nil && ck.curClass.LookupField(id.Name) == nil {
			if sym, isClass := ck.out.ByName[id.Name]; isClass {
				ck.out.Idents[id] = &IdentInfo{Kind: RefClass, Class: sym}
				ck.out.ExprTypes[id] = sym.Type
				fs := sym.LookupField(e.Name)
				if fs == nil || !fs.Static {
					ck.errorf(e.Pos, "class %s has no static field %s", sym.Name, e.Name)
					return PrimType(TypeInt)
				}
				ck.checkVisible(e.Pos, fs.Vis, fs.Owner, fs.Name)
				ck.out.FieldAccs[e] = &FieldInfo{Field: fs}
				return fs.Type
			}
		}
	}
	ot := ck.checkExpr(e.Obj)
	if _, isArr := ot.(*ArrayType); isArr && e.Name == "length" {
		ck.out.FieldAccs[e] = &FieldInfo{ArrayLen: true}
		return PrimType(TypeInt)
	}
	ct, ok := ot.(*ClassType)
	if !ok {
		ck.errorf(e.Pos, "cannot access field %s of %s", e.Name, ot)
		return PrimType(TypeInt)
	}
	fs := ct.Sym.LookupField(e.Name)
	if fs == nil {
		ck.errorf(e.Pos, "class %s has no field %s", ct.Sym.Name, e.Name)
		return PrimType(TypeInt)
	}
	if fs.Static {
		ck.errorf(e.Pos, "static field %s must be accessed through class %s", e.Name, fs.Owner.Name)
	}
	ck.checkVisible(e.Pos, fs.Vis, fs.Owner, fs.Name)
	ck.out.FieldAccs[e] = &FieldInfo{Field: fs}
	return fs.Type
}

func (ck *checker) checkCall(e *Call) Type {
	var argTypes []Type
	checkArgs := func() {
		for _, a := range e.Args {
			argTypes = append(argTypes, ck.checkExpr(a))
		}
	}

	if e.Recv == nil {
		// Bare call: method of the enclosing class, else a builtin.
		if ms := ck.curClass.LookupMethod(e.Name); ms != nil && !ms.IsCtor {
			checkArgs()
			ck.matchParams(e.Pos, ms, argTypes)
			info := &CallInfo{Method: ms}
			if ms.Static {
				info.Kind = CallStatic
			} else {
				info.Kind = CallVirtual
				info.RecvClass = ck.curClass
				info.ImplicitThis = true
				if ck.curMethod != nil && ck.curMethod.Static {
					ck.errorf(e.Pos, "instance method %s cannot be called from a static context", e.Name)
				}
			}
			ck.out.Calls[e] = info
			return ms.Return
		}
		if b, ok := bytecode.BuiltinByName(e.Name); ok {
			checkArgs()
			ret := ck.checkBuiltin(e, b, argTypes)
			ck.out.Calls[e] = &CallInfo{Kind: CallBuiltin, Builtin: b}
			return ret
		}
		ck.errorf(e.Pos, "undefined method %s", e.Name)
		checkArgs()
		return PrimType(TypeInt)
	}

	// Static call through a class name?
	if id, ok := e.Recv.(*Ident); ok {
		if ck.lookupLocal(id.Name) == nil && ck.curClass.LookupField(id.Name) == nil {
			if sym, isClass := ck.out.ByName[id.Name]; isClass {
				ck.out.Idents[id] = &IdentInfo{Kind: RefClass, Class: sym}
				ck.out.ExprTypes[id] = sym.Type
				ms := sym.LookupMethod(e.Name)
				if ms == nil || !ms.Static {
					ck.errorf(e.Pos, "class %s has no static method %s", sym.Name, e.Name)
					checkArgs()
					return PrimType(TypeInt)
				}
				ck.checkVisible(e.Pos, ms.Vis, ms.Owner, ms.Name)
				checkArgs()
				ck.matchParams(e.Pos, ms, argTypes)
				ck.out.Calls[e] = &CallInfo{Kind: CallStatic, Method: ms}
				return ms.Return
			}
		}
	}

	rt := ck.checkExpr(e.Recv)
	ct, ok := rt.(*ClassType)
	if !ok {
		ck.errorf(e.Pos, "cannot call method %s on %s", e.Name, rt)
		checkArgs()
		return PrimType(TypeInt)
	}
	ms := ct.Sym.LookupMethod(e.Name)
	if ms == nil || ms.IsCtor {
		ck.errorf(e.Pos, "class %s has no method %s", ct.Sym.Name, e.Name)
		checkArgs()
		return PrimType(TypeInt)
	}
	if ms.Static {
		ck.errorf(e.Pos, "static method %s must be called through class %s", e.Name, ms.Owner.Name)
	}
	ck.checkVisible(e.Pos, ms.Vis, ms.Owner, ms.Name)
	checkArgs()
	ck.matchParams(e.Pos, ms, argTypes)
	ck.out.Calls[e] = &CallInfo{Kind: CallVirtual, Method: ms, RecvClass: ct.Sym}
	return ms.Return
}

func (ck *checker) matchParams(pos Pos, ms *MethodSym, args []Type) {
	if len(args) != len(ms.Params) {
		ck.errorf(pos, "method %s expects %d arguments, got %d", ms.QualifiedName(), len(ms.Params), len(args))
		return
	}
	for i, pt := range ms.Params {
		if !ck.assignable(pt, args[i]) {
			ck.errorf(pos, "argument %d of %s: cannot pass %s as %s", i+1, ms.QualifiedName(), args[i], pt)
		}
	}
}

func (ck *checker) checkBuiltin(e *Call, b bytecode.Builtin, args []Type) Type {
	stringType := func() Type {
		if sym, ok := ck.out.ByName["String"]; ok {
			return sym.Type
		}
		return PrimType(TypeNull)
	}
	expect := func(want ...Type) {
		if len(args) != len(want) {
			ck.errorf(e.Pos, "builtin %s expects %d arguments, got %d", b, len(want), len(args))
			return
		}
		for i, w := range want {
			if w == nil {
				continue // any array
			}
			if !ck.assignable(w, args[i]) {
				ck.errorf(e.Pos, "builtin %s argument %d: cannot pass %s as %s", b, i+1, args[i], w)
			}
		}
	}
	intT := PrimType(TypeInt)
	switch b {
	case bytecode.BuiltinPrint, bytecode.BuiltinPrintln, bytecode.BuiltinAbort:
		expect(stringType())
		return PrimType(TypeVoid)
	case bytecode.BuiltinPrintInt, bytecode.BuiltinSeedRandom:
		expect(intT)
		return PrimType(TypeVoid)
	case bytecode.BuiltinRandom:
		expect(intT)
		return intT
	case bytecode.BuiltinHash:
		expect(stringType())
		return intT
	case bytecode.BuiltinStringEquals:
		expect(stringType(), stringType())
		return PrimType(TypeBool)
	case bytecode.BuiltinTicks:
		expect()
		return intT
	case bytecode.BuiltinGC:
		expect()
		return PrimType(TypeVoid)
	case bytecode.BuiltinArrayCopy:
		if len(args) != 5 {
			ck.errorf(e.Pos, "arraycopy expects (src, srcPos, dst, dstPos, len)")
			return PrimType(TypeVoid)
		}
		sa, ok1 := args[0].(*ArrayType)
		da, ok2 := args[2].(*ArrayType)
		if !ok1 || !ok2 {
			ck.errorf(e.Pos, "arraycopy requires array arguments")
		} else if !sameType(sa, da) {
			ck.errorf(e.Pos, "arraycopy element types differ: %s vs %s", sa, da)
		}
		for _, i := range []int{1, 3, 4} {
			if !isNumeric(args[i]) {
				ck.errorf(e.Pos, "arraycopy argument %d must be int", i+1)
			}
		}
		return PrimType(TypeVoid)
	}
	ck.errorf(e.Pos, "internal: unchecked builtin %s", b)
	return PrimType(TypeVoid)
}

func (ck *checker) checkNew(e *New) Type {
	sym, ok := ck.out.ByName[e.Class]
	if !ok {
		ck.errorf(e.Pos, "unknown class %s", e.Class)
		for _, a := range e.Args {
			ck.checkExpr(a)
		}
		return PrimType(TypeNull)
	}
	ck.out.NewClasses[e] = sym
	ctor := sym.Methods["<init>"]
	var argTypes []Type
	for _, a := range e.Args {
		argTypes = append(argTypes, ck.checkExpr(a))
	}
	if ctor.Decl == nil && len(argTypes) > 0 {
		ck.errorf(e.Pos, "class %s has no constructor taking %d arguments", sym.Name, len(argTypes))
	} else if ctor.Decl != nil {
		ck.checkVisible(e.Pos, ctor.Vis, ctor.Owner, "<init>")
		ck.matchParams(e.Pos, ctor, argTypes)
	}
	ck.out.NewCtors[e] = ctor
	return sym.Type
}

func (ck *checker) checkBinary(e *Binary) Type {
	lt := ck.checkExpr(e.L)
	rt := ck.checkExpr(e.R)
	boolT := PrimType(TypeBool)
	intT := PrimType(TypeInt)
	switch e.Op {
	case TokAndAnd, TokOrOr:
		if !sameType(lt, boolT) || !sameType(rt, boolT) {
			ck.errorf(e.Pos, "logical operator requires bool operands, found %s and %s", lt, rt)
		}
		return boolT
	case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
		if !isNumeric(lt) || !isNumeric(rt) {
			ck.errorf(e.Pos, "arithmetic requires int operands, found %s and %s", lt, rt)
		}
		return intT
	case TokLt, TokLe, TokGt, TokGe:
		if !isNumeric(lt) || !isNumeric(rt) {
			ck.errorf(e.Pos, "comparison requires int operands, found %s and %s", lt, rt)
		}
		return boolT
	case TokEq, TokNe:
		switch {
		case isNumeric(lt) && isNumeric(rt):
		case sameType(lt, boolT) && sameType(rt, boolT):
		case IsRefType(lt) && IsRefType(rt):
			if !ck.assignable(lt, rt) && !ck.assignable(rt, lt) {
				ck.errorf(e.Pos, "incompatible reference comparison: %s and %s", lt, rt)
			}
		default:
			ck.errorf(e.Pos, "cannot compare %s and %s", lt, rt)
		}
		return boolT
	}
	ck.errorf(e.Pos, "internal: unhandled binary operator %s", e.Op)
	return intT
}

// blockReturns reports whether every path through b ends in return/throw.
func blockReturns(b *Block) bool {
	for _, s := range b.Stmts {
		if stmtReturns(s) {
			return true
		}
	}
	return false
}

func stmtReturns(s Stmt) bool {
	switch s := s.(type) {
	case *Return, *Throw:
		return true
	case *Block:
		return blockReturns(s)
	case *If:
		return s.Else != nil && stmtReturns(s.Then) && stmtReturns(s.Else)
	case *Try:
		return blockReturns(s.Body) && blockReturns(s.Catch)
	case *Sync:
		return blockReturns(s.Body)
	case *While:
		// `while (true)` with no break never falls through.
		if lit, ok := s.Cond.(*BoolLit); ok && lit.V {
			return !containsBreak(s.Body)
		}
	}
	return false
}

func containsBreak(s Stmt) bool {
	switch s := s.(type) {
	case *Break:
		return true
	case *Block:
		for _, inner := range s.Stmts {
			if containsBreak(inner) {
				return true
			}
		}
	case *If:
		if containsBreak(s.Then) {
			return true
		}
		if s.Else != nil && containsBreak(s.Else) {
			return true
		}
	case *Try:
		return containsBreak(s.Body) || containsBreak(s.Catch)
	case *Sync:
		return containsBreak(s.Body)
	}
	// Nested loops consume their own breaks.
	return false
}
