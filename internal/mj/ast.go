package mj

import "dragprof/internal/bytecode"

// TypeExpr is a syntactic type: a base name ("int", "bool", "char", "void"
// or a class name) plus array dimensions.
type TypeExpr struct {
	Pos  Pos
	Base string
	Dims int
}

// IsVoid reports whether the type is void.
func (t TypeExpr) IsVoid() bool { return t.Base == "void" && t.Dims == 0 }

// String renders the type as source text.
func (t TypeExpr) String() string {
	s := t.Base
	for i := 0; i < t.Dims; i++ {
		s += "[]"
	}
	return s
}

// Modifiers are the access and static modifiers of a member.
type Modifiers struct {
	Static bool
	Vis    bytecode.Visibility
}

// Node is any AST node.
type Node interface{ Position() Pos }

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// File is one parsed source file.
type File struct {
	Name    string
	Classes []*ClassDecl
}

// Program is a set of parsed files compiled together.
type Program struct {
	Files []*File
}

// Classes returns all class declarations across files in order.
func (p *Program) Classes() []*ClassDecl {
	var out []*ClassDecl
	for _, f := range p.Files {
		out = append(out, f.Classes...)
	}
	return out
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	Pos     Pos
	Name    string
	Extends string // empty for root classes
	Fields  []*FieldDecl
	Methods []*MethodDecl
	File    string
}

// Position implements Node.
func (c *ClassDecl) Position() Pos { return c.Pos }

// FieldDecl is a field declaration; static fields may carry an initializer
// which runs before main in declaration order.
type FieldDecl struct {
	Pos  Pos
	Mods Modifiers
	Type TypeExpr
	Name string
	Init Expr // may be nil
}

// Position implements Node.
func (f *FieldDecl) Position() Pos { return f.Pos }

// Param is a method parameter.
type Param struct {
	Pos  Pos
	Type TypeExpr
	Name string
}

// MethodDecl is a method or constructor declaration.
type MethodDecl struct {
	Pos    Pos
	Mods   Modifiers
	Return TypeExpr // void for constructors
	Name   string
	Params []Param
	Body   *Block
	IsCtor bool
}

// Position implements Node.
func (m *MethodDecl) Position() Pos { return m.Pos }

// Statements.

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	Pos  Pos
	Type TypeExpr
	Name string
	Init Expr // may be nil
}

// If is a conditional statement.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// For is a C-style for loop; Init and Post may be nil, Cond defaults true.
type For struct {
	Pos  Pos
	Init Stmt // VarDecl, Assign or ExprStmt; may be nil
	Cond Expr // may be nil
	Post Stmt // Assign or ExprStmt; may be nil
	Body Stmt
}

// Return returns from the enclosing method; Value may be nil.
type Return struct {
	Pos   Pos
	Value Expr
}

// Throw raises an exception.
type Throw struct {
	Pos   Pos
	Value Expr
}

// Try is a try/catch statement with a single catch clause.
type Try struct {
	Pos       Pos
	Body      *Block
	CatchType string
	CatchVar  string
	Catch     *Block

	// catchKey is the lazily created synthetic VarDecl under which the
	// checker records the catch variable's LocalSym (see tryCatchKey).
	catchKey *VarDecl
}

// Sync is a synchronized block: monitorenter/monitorexit around Body.
type Sync struct {
	Pos  Pos
	Obj  Expr
	Body *Block
}

// Break exits the innermost loop.
type Break struct{ Pos Pos }

// Continue re-tests the innermost loop.
type Continue struct{ Pos Pos }

// ExprStmt evaluates an expression (a call) for its effects.
type ExprStmt struct {
	Pos Pos
	E   Expr
}

// Assign stores RHS into an lvalue (Ident, FieldAccess or Index).
type Assign struct {
	Pos Pos
	LHS Expr
	RHS Expr
}

// Position implementations.
func (s *Block) Position() Pos    { return s.Pos }
func (s *VarDecl) Position() Pos  { return s.Pos }
func (s *If) Position() Pos       { return s.Pos }
func (s *While) Position() Pos    { return s.Pos }
func (s *For) Position() Pos      { return s.Pos }
func (s *Return) Position() Pos   { return s.Pos }
func (s *Throw) Position() Pos    { return s.Pos }
func (s *Try) Position() Pos      { return s.Pos }
func (s *Sync) Position() Pos     { return s.Pos }
func (s *Break) Position() Pos    { return s.Pos }
func (s *Continue) Position() Pos { return s.Pos }
func (s *ExprStmt) Position() Pos { return s.Pos }
func (s *Assign) Position() Pos   { return s.Pos }

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Throw) stmtNode()    {}
func (*Try) stmtNode()      {}
func (*Sync) stmtNode()     {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*Assign) stmtNode()   {}

// Expressions.

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// CharLit is a character literal.
type CharLit struct {
	Pos Pos
	V   int64
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	V   bool
}

// StringLit is a string literal; the compiler materializes it as a String
// object over a char array.
type StringLit struct {
	Pos Pos
	V   string
}

// NullLit is the null literal.
type NullLit struct{ Pos Pos }

// This is the receiver reference.
type This struct{ Pos Pos }

// Ident names a local, parameter, field (implicit this), static field of
// the enclosing class, or — in qualifier position — a class.
type Ident struct {
	Pos  Pos
	Name string
}

// FieldAccess is expr.Name; when expr denotes a class it is a static field
// access, and ".length" on arrays is the length operator.
type FieldAccess struct {
	Pos  Pos
	Obj  Expr
	Name string
}

// Index is arr[idx].
type Index struct {
	Pos Pos
	Arr Expr
	Idx Expr
}

// Call invokes a method: Recv.Name(Args), or with Recv nil, a method of the
// enclosing class or a builtin.
type Call struct {
	Pos  Pos
	Recv Expr // nil for bare calls
	Name string
	Args []Expr
}

// New allocates an instance: new Class(Args).
type New struct {
	Pos   Pos
	Class string
	Args  []Expr
}

// NewArray allocates an array: new Elem[Length] with optional extra
// dimensions left null (new T[n][] has Elem dims 1).
type NewArray struct {
	Pos    Pos
	Elem   TypeExpr // element type of the created array
	Length Expr
}

// Cast is a reference downcast: (Class) expr. Only class targets are
// supported (no primitive or array casts).
type Cast struct {
	Pos   Pos
	Class string
	E     Expr
}

// Binary is a binary operation.
type Binary struct {
	Pos  Pos
	Op   TokenKind
	L, R Expr
}

// Unary is -x or !x.
type Unary struct {
	Pos Pos
	Op  TokenKind
	E   Expr
}

// Position implementations.
func (e *IntLit) Position() Pos      { return e.Pos }
func (e *CharLit) Position() Pos     { return e.Pos }
func (e *BoolLit) Position() Pos     { return e.Pos }
func (e *StringLit) Position() Pos   { return e.Pos }
func (e *NullLit) Position() Pos     { return e.Pos }
func (e *This) Position() Pos        { return e.Pos }
func (e *Ident) Position() Pos       { return e.Pos }
func (e *FieldAccess) Position() Pos { return e.Pos }
func (e *Index) Position() Pos       { return e.Pos }
func (e *Call) Position() Pos        { return e.Pos }
func (e *New) Position() Pos         { return e.Pos }
func (e *NewArray) Position() Pos    { return e.Pos }
func (e *Cast) Position() Pos        { return e.Pos }
func (e *Binary) Position() Pos      { return e.Pos }
func (e *Unary) Position() Pos       { return e.Pos }

func (*IntLit) exprNode()      {}
func (*CharLit) exprNode()     {}
func (*BoolLit) exprNode()     {}
func (*StringLit) exprNode()   {}
func (*NullLit) exprNode()     {}
func (*This) exprNode()        {}
func (*Ident) exprNode()       {}
func (*FieldAccess) exprNode() {}
func (*Index) exprNode()       {}
func (*Call) exprNode()        {}
func (*New) exprNode()         {}
func (*NewArray) exprNode()    {}
func (*Cast) exprNode()        {}
func (*Binary) exprNode()      {}
func (*Unary) exprNode()       {}

// CountStatements counts executable statements in a class, the metric the
// paper's Table 1 reports per benchmark.
func CountStatements(c *ClassDecl) int {
	n := 0
	for _, f := range c.Fields {
		if f.Init != nil {
			n++
		}
	}
	for _, m := range c.Methods {
		n += countBlock(m.Body)
	}
	return n
}

func countBlock(b *Block) int {
	if b == nil {
		return 0
	}
	n := 0
	for _, s := range b.Stmts {
		n += countStmt(s)
	}
	return n
}

func countStmt(s Stmt) int {
	switch s := s.(type) {
	case *Block:
		return countBlock(s)
	case *If:
		n := 1 + countStmt(s.Then)
		if s.Else != nil {
			n += countStmt(s.Else)
		}
		return n
	case *While:
		return 1 + countStmt(s.Body)
	case *For:
		n := 1 + countStmt(s.Body)
		return n
	case *Try:
		return 1 + countBlock(s.Body) + countBlock(s.Catch)
	case *Sync:
		return 1 + countBlock(s.Body)
	case nil:
		return 0
	default:
		return 1
	}
}
