package mj

import (
	"fmt"

	"dragprof/internal/bytecode"
)

// Parser is a recursive-descent parser for MiniJava.
type Parser struct {
	toks []Token
	pos  int
	errs []error
	file string
}

// Parse parses one source file. It returns the file and any diagnostics;
// the file is non-nil whenever any classes parsed, even with errors.
func Parse(file, src string) (*File, []error) {
	toks, lexErrs := LexAll(file, src)
	p := &Parser{toks: toks, file: file, errs: lexErrs}
	f := p.parseFile()
	return f, p.errs
}

// ParseProgram parses several named sources into one program. sources maps
// file name to source text; order fixes static-initializer ordering, so
// callers pass an ordered slice of names.
func ParseProgram(names []string, sources map[string]string) (*Program, []error) {
	prog := &Program{}
	var errs []error
	for _, name := range names {
		f, ferrs := Parse(name, sources[name])
		errs = append(errs, ferrs...)
		if f != nil {
			prog.Files = append(prog.Files, f)
		}
	}
	return prog, errs
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekKind(ahead int) TokenKind {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return TokEOF
	}
	return p.toks[i].Kind
}

func (p *Parser) at(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokenKind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokenKind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.describeCur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) describeCur() string {
	t := p.cur()
	if t.Kind == TokIdent {
		return fmt.Sprintf("identifier %q", t.Text)
	}
	return t.Kind.String()
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, errf(p.cur().Pos, format, args...))
}

// syncTo skips tokens until one of the kinds (or EOF) is current.
func (p *Parser) syncTo(kinds ...TokenKind) {
	for !p.at(TokEOF) {
		for _, k := range kinds {
			if p.at(k) {
				return
			}
		}
		p.next()
	}
}

func (p *Parser) parseFile() *File {
	f := &File{Name: p.file}
	for !p.at(TokEOF) {
		if p.at(TokClass) {
			if c := p.parseClass(); c != nil {
				f.Classes = append(f.Classes, c)
			}
		} else {
			p.errorf("expected 'class', found %s", p.describeCur())
			p.syncTo(TokClass)
		}
	}
	return f
}

func (p *Parser) parseClass() *ClassDecl {
	start := p.expect(TokClass)
	name := p.expect(TokIdent)
	c := &ClassDecl{Pos: start.Pos, Name: name.Text, File: p.file}
	if p.accept(TokExtends) {
		c.Extends = p.expect(TokIdent).Text
	}
	p.expect(TokLBrace)
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		p.parseMember(c)
	}
	p.expect(TokRBrace)
	return c
}

func (p *Parser) parseModifiers() Modifiers {
	var m Modifiers
	for {
		switch p.cur().Kind {
		case TokStatic:
			p.next()
			m.Static = true
		case TokPublic:
			p.next()
			m.Vis = bytecode.VisPublic
		case TokPrivate:
			p.next()
			m.Vis = bytecode.VisPrivate
		case TokProtected:
			p.next()
			m.Vis = bytecode.VisProtected
		default:
			return m
		}
	}
}

func (p *Parser) parseMember(c *ClassDecl) {
	startPos := p.pos
	defer func() {
		// Guarantee progress on malformed members: skip to the next
		// plausible member boundary.
		if p.pos == startPos {
			p.syncTo(TokSemi, TokRBrace, TokClass)
			p.accept(TokSemi)
		}
	}()
	mods := p.parseModifiers()

	// Constructor: ID '(' with ID == class name.
	if p.at(TokIdent) && p.cur().Text == c.Name && p.peekKind(1) == TokLParen {
		name := p.next()
		m := &MethodDecl{
			Pos:    name.Pos,
			Mods:   mods,
			Return: TypeExpr{Pos: name.Pos, Base: "void"},
			Name:   "<init>",
			IsCtor: true,
		}
		m.Params = p.parseParams()
		m.Body = p.parseBlock()
		c.Methods = append(c.Methods, m)
		return
	}

	typ := p.parseType()
	name := p.expect(TokIdent)
	if p.at(TokLParen) {
		m := &MethodDecl{Pos: name.Pos, Mods: mods, Return: typ, Name: name.Text}
		m.Params = p.parseParams()
		m.Body = p.parseBlock()
		c.Methods = append(c.Methods, m)
		return
	}
	fd := &FieldDecl{Pos: name.Pos, Mods: mods, Type: typ, Name: name.Text}
	if p.accept(TokAssign) {
		fd.Init = p.parseExpr()
	}
	p.expect(TokSemi)
	c.Fields = append(c.Fields, fd)
}

func (p *Parser) parseParams() []Param {
	p.expect(TokLParen)
	var params []Param
	for !p.at(TokRParen) && !p.at(TokEOF) {
		if len(params) > 0 {
			p.expect(TokComma)
		}
		before := p.pos
		typ := p.parseType()
		name := p.expect(TokIdent)
		params = append(params, Param{Pos: name.Pos, Type: typ, Name: name.Text})
		if p.pos == before {
			// Malformed parameter list: bail to the closing paren.
			p.syncTo(TokRParen, TokLBrace)
			break
		}
	}
	p.expect(TokRParen)
	return params
}

func (p *Parser) parseType() TypeExpr {
	t := p.cur()
	var base string
	switch t.Kind {
	case TokInt:
		base = "int"
	case TokBool:
		base = "bool"
	case TokChar:
		base = "char"
	case TokVoid:
		base = "void"
	case TokIdent:
		base = t.Text
	default:
		p.errorf("expected a type, found %s", p.describeCur())
		// Consume the offending token so error recovery always makes
		// progress.
		if !p.at(TokEOF) {
			p.next()
		}
		return TypeExpr{Pos: t.Pos, Base: "int"}
	}
	p.next()
	typ := TypeExpr{Pos: t.Pos, Base: base}
	for p.at(TokLBracket) && p.peekKind(1) == TokRBracket {
		p.next()
		p.next()
		typ.Dims++
	}
	return typ
}

func (p *Parser) parseBlock() *Block {
	start := p.expect(TokLBrace)
	b := &Block{Pos: start.Pos}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.next() // malformed statement: force progress
		}
	}
	p.expect(TokRBrace)
	return b
}

// startsLocalDecl reports whether the current tokens begin a local variable
// declaration rather than an expression statement.
func (p *Parser) startsLocalDecl() bool {
	switch p.cur().Kind {
	case TokInt, TokBool, TokChar:
		return true
	case TokIdent:
		// "T x" or "T[] x" (or "T[][] x" ...).
		if p.peekKind(1) == TokIdent {
			return true
		}
		i := 1
		for p.peekKind(i) == TokLBracket && p.peekKind(i+1) == TokRBracket {
			i += 2
		}
		return i > 1 && p.peekKind(i) == TokIdent
	}
	return false
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokIf:
		start := p.next()
		p.expect(TokLParen)
		cond := p.parseExpr()
		p.expect(TokRParen)
		then := p.parseStmt()
		var els Stmt
		if p.accept(TokElse) {
			els = p.parseStmt()
		}
		return &If{Pos: start.Pos, Cond: cond, Then: then, Else: els}
	case TokWhile:
		start := p.next()
		p.expect(TokLParen)
		cond := p.parseExpr()
		p.expect(TokRParen)
		return &While{Pos: start.Pos, Cond: cond, Body: p.parseStmt()}
	case TokFor:
		return p.parseFor()
	case TokReturn:
		start := p.next()
		r := &Return{Pos: start.Pos}
		if !p.at(TokSemi) {
			r.Value = p.parseExpr()
		}
		p.expect(TokSemi)
		return r
	case TokThrow:
		start := p.next()
		v := p.parseExpr()
		p.expect(TokSemi)
		return &Throw{Pos: start.Pos, Value: v}
	case TokTry:
		start := p.next()
		body := p.parseBlock()
		p.expect(TokCatch)
		p.expect(TokLParen)
		ctype := p.expect(TokIdent).Text
		cvar := p.expect(TokIdent).Text
		p.expect(TokRParen)
		catch := p.parseBlock()
		return &Try{Pos: start.Pos, Body: body, CatchType: ctype, CatchVar: cvar, Catch: catch}
	case TokSynchronized:
		start := p.next()
		p.expect(TokLParen)
		obj := p.parseExpr()
		p.expect(TokRParen)
		return &Sync{Pos: start.Pos, Obj: obj, Body: p.parseBlock()}
	case TokBreak:
		start := p.next()
		p.expect(TokSemi)
		return &Break{Pos: start.Pos}
	case TokContinue:
		start := p.next()
		p.expect(TokSemi)
		return &Continue{Pos: start.Pos}
	case TokSemi:
		p.next()
		return nil
	}
	if p.startsLocalDecl() {
		d := p.parseVarDecl()
		p.expect(TokSemi)
		return d
	}
	s := p.parseSimpleStmt()
	p.expect(TokSemi)
	return s
}

func (p *Parser) parseVarDecl() *VarDecl {
	typ := p.parseType()
	name := p.expect(TokIdent)
	d := &VarDecl{Pos: name.Pos, Type: typ, Name: name.Text}
	if p.accept(TokAssign) {
		d.Init = p.parseExpr()
	}
	return d
}

// parseSimpleStmt parses an assignment or expression statement (no
// trailing semicolon).
func (p *Parser) parseSimpleStmt() Stmt {
	start := p.cur().Pos
	e := p.parseExpr()
	if p.accept(TokAssign) {
		rhs := p.parseExpr()
		switch e.(type) {
		case *Ident, *FieldAccess, *Index:
		default:
			p.errs = append(p.errs, errf(start, "invalid assignment target"))
		}
		return &Assign{Pos: start, LHS: e, RHS: rhs}
	}
	return &ExprStmt{Pos: start, E: e}
}

func (p *Parser) parseFor() Stmt {
	start := p.next()
	p.expect(TokLParen)
	f := &For{Pos: start.Pos}
	if !p.at(TokSemi) {
		if p.startsLocalDecl() {
			f.Init = p.parseVarDecl()
		} else {
			f.Init = p.parseSimpleStmt()
		}
	}
	p.expect(TokSemi)
	if !p.at(TokSemi) {
		f.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if !p.at(TokRParen) {
		f.Post = p.parseSimpleStmt()
	}
	p.expect(TokRParen)
	f.Body = p.parseStmt()
	return f
}

// Expression parsing, precedence climbing.

func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	e := p.parseAnd()
	for p.at(TokOrOr) {
		op := p.next()
		e = &Binary{Pos: op.Pos, Op: TokOrOr, L: e, R: p.parseAnd()}
	}
	return e
}

func (p *Parser) parseAnd() Expr {
	e := p.parseEquality()
	for p.at(TokAndAnd) {
		op := p.next()
		e = &Binary{Pos: op.Pos, Op: TokAndAnd, L: e, R: p.parseEquality()}
	}
	return e
}

func (p *Parser) parseEquality() Expr {
	e := p.parseRelational()
	for p.at(TokEq) || p.at(TokNe) {
		op := p.next()
		e = &Binary{Pos: op.Pos, Op: op.Kind, L: e, R: p.parseRelational()}
	}
	return e
}

func (p *Parser) parseRelational() Expr {
	e := p.parseAdditive()
	for p.at(TokLt) || p.at(TokLe) || p.at(TokGt) || p.at(TokGe) {
		op := p.next()
		e = &Binary{Pos: op.Pos, Op: op.Kind, L: e, R: p.parseAdditive()}
	}
	return e
}

func (p *Parser) parseAdditive() Expr {
	e := p.parseMultiplicative()
	for p.at(TokPlus) || p.at(TokMinus) {
		op := p.next()
		e = &Binary{Pos: op.Pos, Op: op.Kind, L: e, R: p.parseMultiplicative()}
	}
	return e
}

func (p *Parser) parseMultiplicative() Expr {
	e := p.parseUnary()
	for p.at(TokStar) || p.at(TokSlash) || p.at(TokPercent) {
		op := p.next()
		e = &Binary{Pos: op.Pos, Op: op.Kind, L: e, R: p.parseUnary()}
	}
	return e
}

func (p *Parser) parseUnary() Expr {
	switch p.cur().Kind {
	case TokMinus:
		op := p.next()
		return &Unary{Pos: op.Pos, Op: TokMinus, E: p.parseUnary()}
	case TokBang:
		op := p.next()
		return &Unary{Pos: op.Pos, Op: TokBang, E: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case TokDot:
			p.next()
			name := p.expect(TokIdent)
			if p.at(TokLParen) {
				args := p.parseArgs()
				e = &Call{Pos: name.Pos, Recv: e, Name: name.Text, Args: args}
			} else {
				e = &FieldAccess{Pos: name.Pos, Obj: e, Name: name.Text}
			}
		case TokLBracket:
			lb := p.next()
			idx := p.parseExpr()
			p.expect(TokRBracket)
			e = &Index{Pos: lb.Pos, Arr: e, Idx: idx}
		default:
			return e
		}
	}
}

func (p *Parser) parseArgs() []Expr {
	p.expect(TokLParen)
	var args []Expr
	for !p.at(TokRParen) && !p.at(TokEOF) {
		if len(args) > 0 {
			p.expect(TokComma)
		}
		before := p.pos
		args = append(args, p.parseExpr())
		if p.pos == before {
			p.syncTo(TokRParen, TokSemi)
			break
		}
	}
	p.expect(TokRParen)
	return args
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Int}
	case TokCharLit:
		p.next()
		return &CharLit{Pos: t.Pos, V: t.Int}
	case TokStringLit:
		p.next()
		return &StringLit{Pos: t.Pos, V: t.Text}
	case TokTrue:
		p.next()
		return &BoolLit{Pos: t.Pos, V: true}
	case TokFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, V: false}
	case TokNull:
		p.next()
		return &NullLit{Pos: t.Pos}
	case TokThis:
		p.next()
		return &This{Pos: t.Pos}
	case TokNew:
		return p.parseNew()
	case TokLParen:
		if cls, width := p.castPrefix(); cls != "" {
			for i := 0; i < width; i++ {
				p.next()
			}
			return &Cast{Pos: t.Pos, Class: cls, E: p.parseUnary()}
		}
		p.next()
		e := p.parseExpr()
		p.expect(TokRParen)
		return e
	case TokIdent:
		p.next()
		if p.at(TokLParen) {
			args := p.parseArgs()
			return &Call{Pos: t.Pos, Name: t.Text, Args: args}
		}
		return &Ident{Pos: t.Pos, Name: t.Text}
	}
	p.errorf("expected an expression, found %s", p.describeCur())
	p.next()
	return &IntLit{Pos: t.Pos}
}

// castPrefix recognizes "(ClassName)" followed by an expression starter as
// a cast, returning the class name and the token width to consume (the
// parenthesized name including both parens). The follow-token restriction
// keeps "(x) + y" a parenthesized expression.
func (p *Parser) castPrefix() (string, int) {
	if p.cur().Kind != TokLParen || p.peekKind(1) != TokIdent || p.peekKind(2) != TokRParen {
		return "", 0
	}
	switch p.peekKind(3) {
	case TokIdent, TokIntLit, TokCharLit, TokStringLit, TokTrue, TokFalse,
		TokNull, TokThis, TokNew, TokLParen:
		return p.toks[p.pos+1].Text, 3
	}
	return "", 0
}

func (p *Parser) parseNew() Expr {
	start := p.expect(TokNew)
	t := p.cur()
	var base string
	switch t.Kind {
	case TokInt:
		base = "int"
	case TokBool:
		base = "bool"
	case TokChar:
		base = "char"
	case TokIdent:
		base = t.Text
	default:
		p.errorf("expected a type after 'new', found %s", p.describeCur())
		return &IntLit{Pos: start.Pos}
	}
	p.next()
	if p.at(TokLParen) {
		if t.Kind != TokIdent {
			p.errorf("cannot construct primitive type %s", base)
		}
		args := p.parseArgs()
		return &New{Pos: start.Pos, Class: base, Args: args}
	}
	p.expect(TokLBracket)
	length := p.parseExpr()
	p.expect(TokRBracket)
	elem := TypeExpr{Pos: t.Pos, Base: base}
	for p.at(TokLBracket) && p.peekKind(1) == TokRBracket {
		p.next()
		p.next()
		elem.Dims++
	}
	return &NewArray{Pos: start.Pos, Elem: elem, Length: length}
}
