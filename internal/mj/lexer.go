package mj

import (
	"strconv"
	"strings"
)

// Lexer converts MiniJava source text into tokens. It supports // line and
// /* block */ comments and Java-style character escapes.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src; file names the source in diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the diagnostics accumulated during scanning.
func (lx *Lexer) Errors() []error { return lx.errs }

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(pos Pos, format string, args ...any) {
	lx.errs = append(lx.errs, errf(pos, format, args...))
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}
	}
	c := lx.advance()
	switch {
	case isIdentStart(c):
		start := lx.off - 1
		for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}
	case c >= '0' && c <= '9':
		start := lx.off - 1
		for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			lx.errorf(pos, "integer literal %s out of range", text)
		}
		return Token{Kind: TokIntLit, Text: text, Int: v, Pos: pos}
	case c == '\'':
		return lx.charLit(pos)
	case c == '"':
		return lx.stringLit(pos)
	}

	two := func(next byte, yes, no TokenKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '+':
		return Token{Kind: TokPlus, Pos: pos}
	case '-':
		return Token{Kind: TokMinus, Pos: pos}
	case '*':
		return Token{Kind: TokStar, Pos: pos}
	case '/':
		return Token{Kind: TokSlash, Pos: pos}
	case '%':
		return Token{Kind: TokPercent, Pos: pos}
	case '!':
		return two('=', TokNe, TokBang)
	case '=':
		return two('=', TokEq, TokAssign)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: pos}
		}
		lx.errorf(pos, "unexpected character '&' (did you mean '&&'?)")
		return lx.Next()
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: pos}
		}
		lx.errorf(pos, "unexpected character '|' (did you mean '||'?)")
		return lx.Next()
	case '(':
		return Token{Kind: TokLParen, Pos: pos}
	case ')':
		return Token{Kind: TokRParen, Pos: pos}
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}
	case ';':
		return Token{Kind: TokSemi, Pos: pos}
	case ',':
		return Token{Kind: TokComma, Pos: pos}
	case '.':
		return Token{Kind: TokDot, Pos: pos}
	}
	lx.errorf(pos, "unexpected character %q", string(c))
	return lx.Next()
}

func (lx *Lexer) charLit(pos Pos) Token {
	if lx.off >= len(lx.src) {
		lx.errorf(pos, "unterminated char literal")
		return Token{Kind: TokCharLit, Pos: pos}
	}
	var v int64
	c := lx.advance()
	if c == '\\' {
		v = int64(lx.escape(pos))
	} else {
		v = int64(c)
	}
	if lx.peek() != '\'' {
		lx.errorf(pos, "unterminated char literal")
	} else {
		lx.advance()
	}
	return Token{Kind: TokCharLit, Int: v, Text: string(rune(v)), Pos: pos}
}

func (lx *Lexer) stringLit(pos Pos) Token {
	var b strings.Builder
	for lx.off < len(lx.src) {
		c := lx.advance()
		switch c {
		case '"':
			return Token{Kind: TokStringLit, Text: b.String(), Pos: pos}
		case '\\':
			b.WriteByte(lx.escape(pos))
		case '\n':
			lx.errorf(pos, "newline in string literal")
			return Token{Kind: TokStringLit, Text: b.String(), Pos: pos}
		default:
			b.WriteByte(c)
		}
	}
	lx.errorf(pos, "unterminated string literal")
	return Token{Kind: TokStringLit, Text: b.String(), Pos: pos}
}

func (lx *Lexer) escape(pos Pos) byte {
	if lx.off >= len(lx.src) {
		lx.errorf(pos, "unterminated escape sequence")
		return 0
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\', '\'', '"':
		return c
	}
	lx.errorf(pos, "unknown escape sequence '\\%c'", c)
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// LexAll scans the entire source and returns all tokens including the
// trailing EOF token. It is a convenience for the parser and tests.
func LexAll(file, src string) ([]Token, []error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, lx.Errors()
		}
	}
}
