package mj

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a parsed file back to MiniJava source. The output
// re-parses to a structurally identical AST (modulo positions), which the
// round-trip tests verify; it is also what the CLI tools use to show
// rewritten programs.
func Print(f *File) string {
	p := &printer{}
	for i, c := range f.Classes {
		if i > 0 {
			p.nl()
		}
		p.class(c)
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) nl() { p.b.WriteByte('\n') }

func (p *printer) class(c *ClassDecl) {
	ext := ""
	if c.Extends != "" {
		ext = " extends " + c.Extends
	}
	p.line("class %s%s {", c.Name, ext)
	p.indent++
	for _, fd := range c.Fields {
		init := ""
		if fd.Init != nil {
			init = " = " + exprString(fd.Init)
		}
		p.line("%s%s %s%s;", mods(fd.Mods), fd.Type, fd.Name, init)
	}
	for i, m := range c.Methods {
		if i > 0 || len(c.Fields) > 0 {
			p.nl()
		}
		p.method(c, m)
	}
	p.indent--
	p.line("}")
}

func mods(m Modifiers) string {
	s := ""
	switch m.Vis.String() {
	case "private":
		s = "private "
	case "protected":
		s = "protected "
	case "public":
		s = "public "
	}
	if m.Static {
		s += "static "
	}
	return s
}

func (p *printer) method(c *ClassDecl, m *MethodDecl) {
	var params []string
	for _, pr := range m.Params {
		params = append(params, pr.Type.String()+" "+pr.Name)
	}
	sig := strings.Join(params, ", ")
	if m.IsCtor {
		p.line("%s%s(%s) {", mods(m.Mods), c.Name, sig)
	} else {
		p.line("%s%s %s(%s) {", mods(m.Mods), m.Return, m.Name, sig)
	}
	p.indent++
	p.stmts(m.Body.Stmts)
	p.indent--
	p.line("}")
}

func (p *printer) stmts(ss []Stmt) {
	for _, s := range ss {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		p.stmts(s.Stmts)
		p.indent--
		p.line("}")
	case *VarDecl:
		init := ""
		if s.Init != nil {
			init = " = " + exprString(s.Init)
		}
		p.line("%s %s%s;", s.Type, s.Name, init)
	case *If:
		p.line("if (%s) {", exprString(s.Cond))
		p.indent++
		p.inline(s.Then)
		p.indent--
		if s.Else != nil {
			p.line("} else {")
			p.indent++
			p.inline(s.Else)
			p.indent--
		}
		p.line("}")
	case *While:
		p.line("while (%s) {", exprString(s.Cond))
		p.indent++
		p.inline(s.Body)
		p.indent--
		p.line("}")
	case *For:
		init, post := "", ""
		if s.Init != nil {
			init = simpleString(s.Init)
		}
		cond := ""
		if s.Cond != nil {
			cond = exprString(s.Cond)
		}
		if s.Post != nil {
			post = simpleString(s.Post)
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		p.inline(s.Body)
		p.indent--
		p.line("}")
	case *Return:
		if s.Value != nil {
			p.line("return %s;", exprString(s.Value))
		} else {
			p.line("return;")
		}
	case *Throw:
		p.line("throw %s;", exprString(s.Value))
	case *Try:
		p.line("try {")
		p.indent++
		p.stmts(s.Body.Stmts)
		p.indent--
		p.line("} catch (%s %s) {", s.CatchType, s.CatchVar)
		p.indent++
		p.stmts(s.Catch.Stmts)
		p.indent--
		p.line("}")
	case *Sync:
		p.line("synchronized (%s) {", exprString(s.Obj))
		p.indent++
		p.stmts(s.Body.Stmts)
		p.indent--
		p.line("}")
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	case *ExprStmt:
		p.line("%s;", exprString(s.E))
	case *Assign:
		p.line("%s = %s;", exprString(s.LHS), exprString(s.RHS))
	}
}

// inline prints a statement that is the body of a control structure; a
// Block's braces are already supplied by the caller.
func (p *printer) inline(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.stmts(b.Stmts)
		return
	}
	p.stmt(s)
}

// simpleString renders an init/post statement of a for header.
func simpleString(s Stmt) string {
	switch s := s.(type) {
	case *VarDecl:
		init := ""
		if s.Init != nil {
			init = " = " + exprString(s.Init)
		}
		return fmt.Sprintf("%s %s%s", s.Type, s.Name, init)
	case *Assign:
		return fmt.Sprintf("%s = %s", exprString(s.LHS), exprString(s.RHS))
	case *ExprStmt:
		return exprString(s.E)
	}
	return ""
}

var opText = map[TokenKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||",
}

// exprString renders an expression with explicit parentheses around every
// binary operation, which keeps precedence round-trip-safe.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.V, 10)
	case *CharLit:
		return charQuote(e.V)
	case *BoolLit:
		if e.V {
			return "true"
		}
		return "false"
	case *StringLit:
		return strconv.Quote(e.V)
	case *NullLit:
		return "null"
	case *This:
		return "this"
	case *Ident:
		return e.Name
	case *FieldAccess:
		return exprString(e.Obj) + "." + e.Name
	case *Index:
		return exprString(e.Arr) + "[" + exprString(e.Idx) + "]"
	case *Call:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprString(a))
		}
		call := e.Name + "(" + strings.Join(args, ", ") + ")"
		if e.Recv != nil {
			return exprString(e.Recv) + "." + call
		}
		return call
	case *New:
		var args []string
		for _, a := range e.Args {
			args = append(args, exprString(a))
		}
		return "new " + e.Class + "(" + strings.Join(args, ", ") + ")"
	case *NewArray:
		suffix := strings.Repeat("[]", e.Elem.Dims)
		return "new " + e.Elem.Base + "[" + exprString(e.Length) + "]" + suffix
	case *Cast:
		return "(" + e.Class + ") " + exprString(e.E)
	case *Binary:
		return "(" + exprString(e.L) + " " + opText[e.Op] + " " + exprString(e.R) + ")"
	case *Unary:
		op := "-"
		if e.Op == TokBang {
			op = "!"
		}
		return op + exprString(e.E)
	}
	return "?"
}

func charQuote(v int64) string {
	switch v {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\r':
		return `'\r'`
	case 0:
		return `'\0'`
	case '\\':
		return `'\\'`
	case '\'':
		return `'\''`
	}
	if v >= 32 && v < 127 {
		return "'" + string(rune(v)) + "'"
	}
	// Non-printable: fall back to the numeric value via int relaxation.
	return strconv.FormatInt(v, 10)
}
