package mj

import (
	"dragprof/internal/bytecode"
)

// Type is a MiniJava semantic type.
type Type interface {
	String() string
	isType()
}

// PrimType is a primitive type.
type PrimType int

// Primitive types. TypeNull is the type of the null literal, assignable to
// any reference type.
const (
	TypeInt PrimType = iota
	TypeBool
	TypeChar
	TypeVoid
	TypeNull
)

func (PrimType) isType() {}

// String implements Type.
func (t PrimType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypeNull:
		return "null"
	}
	return "?"
}

// ClassType is a reference to a class instance.
type ClassType struct{ Sym *ClassSym }

func (*ClassType) isType() {}

// String implements Type.
func (t *ClassType) String() string { return t.Sym.Name }

// ArrayType is an array of Elem.
type ArrayType struct{ Elem Type }

func (*ArrayType) isType() {}

// String implements Type.
func (t *ArrayType) String() string { return t.Elem.String() + "[]" }

// IsRefType reports whether values of t are heap references.
func IsRefType(t Type) bool {
	switch t := t.(type) {
	case *ClassType, *ArrayType:
		return true
	case PrimType:
		return t == TypeNull
	}
	return false
}

// isNumeric reports whether t participates in arithmetic (int or char; char
// values widen implicitly, a documented MiniJava relaxation of Java's cast
// requirement).
func isNumeric(t Type) bool {
	p, ok := t.(PrimType)
	return ok && (p == TypeInt || p == TypeChar)
}

// ElemKindOf maps a semantic type to the array element kind that stores it.
func ElemKindOf(t Type) bytecode.ElemKind {
	switch t := t.(type) {
	case PrimType:
		switch t {
		case TypeBool:
			return bytecode.ElemBool
		case TypeChar:
			return bytecode.ElemChar
		default:
			return bytecode.ElemInt
		}
	default:
		_ = t
		return bytecode.ElemRef
	}
}

// sameType reports structural type equality.
func sameType(a, b Type) bool {
	switch a := a.(type) {
	case PrimType:
		b, ok := b.(PrimType)
		return ok && a == b
	case *ClassType:
		b, ok := b.(*ClassType)
		return ok && a.Sym == b.Sym
	case *ArrayType:
		b, ok := b.(*ArrayType)
		return ok && sameType(a.Elem, b.Elem)
	}
	return false
}

// ClassSym is the semantic symbol for a class.
type ClassSym struct {
	Name  string
	Decl  *ClassDecl
	Super *ClassSym
	// ID is the class id in declaration order; the compiler reuses it.
	ID int32
	// Fields and Methods hold declared members only; lookup walks Super.
	Fields  map[string]*FieldSym
	Methods map[string]*MethodSym
	// FieldOrder and MethodOrder preserve declaration order.
	FieldOrder  []*FieldSym
	MethodOrder []*MethodSym
	// NumSlots counts instance slots including inherited ones.
	NumSlots int32
	// NumStatic counts static slots declared by this class.
	NumStatic int32
	// Finalizable is true when the class or an ancestor declares
	// finalize().
	Finalizable bool
	// Type is the canonical ClassType for this symbol.
	Type *ClassType
}

// IsSubclassOf reports whether c is sym or a subclass of sym.
func (c *ClassSym) IsSubclassOf(sym *ClassSym) bool {
	for cur := c; cur != nil; cur = cur.Super {
		if cur == sym {
			return true
		}
	}
	return false
}

// LookupField resolves a field name, walking superclasses.
func (c *ClassSym) LookupField(name string) *FieldSym {
	for cur := c; cur != nil; cur = cur.Super {
		if f, ok := cur.Fields[name]; ok {
			return f
		}
	}
	return nil
}

// LookupMethod resolves a method name, walking superclasses.
func (c *ClassSym) LookupMethod(name string) *MethodSym {
	for cur := c; cur != nil; cur = cur.Super {
		if m, ok := cur.Methods[name]; ok {
			return m
		}
	}
	return nil
}

// FieldSym is the semantic symbol for a field.
type FieldSym struct {
	Name   string
	Type   Type
	Static bool
	Vis    bytecode.Visibility
	// Slot is the instance slot (including inherited offset) or the
	// static slot within the owner class.
	Slot  int32
	Owner *ClassSym
	Decl  *FieldDecl
}

// MethodSym is the semantic symbol for a method or constructor.
type MethodSym struct {
	Name   string
	Params []Type
	Return Type
	Static bool
	IsCtor bool
	Vis    bytecode.Visibility
	Owner  *ClassSym
	Decl   *MethodDecl // nil for the synthesized default constructor
	// ID is the global method id; the compiler reuses it.
	ID int32
	// VIndex is the vtable index for instance methods, -1 otherwise.
	VIndex int32
	// Finalizer is true for void finalize() with no parameters.
	Finalizer bool
}

// QualifiedName returns Class.method for diagnostics.
func (m *MethodSym) QualifiedName() string { return m.Owner.Name + "." + m.Name }

// LocalSym is a local variable or parameter.
type LocalSym struct {
	Name string
	Type Type
	// Slot is the frame slot, assigned during checking.
	Slot int32
	// IsParam marks parameters (including the receiver).
	IsParam bool
	Pos     Pos
}

// RefKind classifies what an identifier denotes.
type RefKind int

// Identifier reference kinds.
const (
	// RefLocal is a local variable or parameter.
	RefLocal RefKind = iota
	// RefField is an instance field accessed through the implicit this.
	RefField
	// RefStatic is a static field.
	RefStatic
	// RefClass is a class name used as a qualifier.
	RefClass
)

// IdentInfo is the resolution of an Ident.
type IdentInfo struct {
	Kind  RefKind
	Local *LocalSym
	Field *FieldSym
	Class *ClassSym
}

// CallKind classifies a resolved call.
type CallKind int

// Call kinds.
const (
	// CallVirtual dispatches through the receiver's vtable.
	CallVirtual CallKind = iota
	// CallStatic invokes a static method directly.
	CallStatic
	// CallBuiltin invokes a VM builtin.
	CallBuiltin
)

// CallInfo is the resolution of a Call.
type CallInfo struct {
	Kind    CallKind
	Method  *MethodSym
	Builtin bytecode.Builtin
	// RecvClass is the static receiver class for virtual calls.
	RecvClass *ClassSym
	// ImplicitThis marks bare instance-method calls (foo() meaning
	// this.foo()).
	ImplicitThis bool
}

// FieldInfo is the resolution of a FieldAccess.
type FieldInfo struct {
	Field *FieldSym
	// ArrayLen marks ".length" on arrays.
	ArrayLen bool
}

// Checked is the result of semantic analysis: the symbol tables plus
// side-table annotations the compiler and static analyses consume.
type Checked struct {
	Prog    *Program
	Classes []*ClassSym // in id order
	ByName  map[string]*ClassSym
	Methods []*MethodSym // in id order

	ExprTypes  map[Expr]Type
	Idents     map[*Ident]*IdentInfo
	Calls      map[*Call]*CallInfo
	FieldAccs  map[*FieldAccess]*FieldInfo
	NewCtors   map[*New]*MethodSym // nil entry when using the default ctor
	NewClasses map[*New]*ClassSym
	Locals     map[*VarDecl]*LocalSym
	ParamSyms  map[*MethodDecl][]*LocalSym // parallel to Params; instance methods have `this` first
	MaxLocals  map[*MethodDecl]int
}

// TypeOf returns the checked type of an expression.
func (c *Checked) TypeOf(e Expr) Type { return c.ExprTypes[e] }

// ResolveTypeExpr converts a syntactic type to a semantic one; it returns
// nil for unknown class names.
func (c *Checked) ResolveTypeExpr(t TypeExpr) Type {
	var base Type
	switch t.Base {
	case "int":
		base = TypeInt
	case "bool":
		base = TypeBool
	case "char":
		base = TypeChar
	case "void":
		base = TypeVoid
	default:
		sym, ok := c.ByName[t.Base]
		if !ok {
			return nil
		}
		base = sym.Type
	}
	for i := 0; i < t.Dims; i++ {
		base = &ArrayType{Elem: base}
	}
	return base
}
