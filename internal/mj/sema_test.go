package mj

import (
	"strings"
	"testing"
)

// checkSrc parses and checks a source compiled with the stdlib.
func checkSrc(t *testing.T, src string) (*Checked, []error) {
	t.Helper()
	ast, perrs := ParseProgram(
		[]string{StdlibFileName, "t.mj"},
		map[string]string{StdlibFileName: Stdlib, "t.mj": src})
	if len(perrs) > 0 {
		t.Fatalf("parse: %v", perrs)
	}
	return Check(ast)
}

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	ck, errs := checkSrc(t, src)
	if len(errs) > 0 {
		t.Fatalf("check errors: %v", errs)
	}
	return ck
}

func wantError(t *testing.T, src, fragment string) {
	t.Helper()
	_, errs := checkSrc(t, src)
	for _, e := range errs {
		if strings.Contains(e.Error(), fragment) {
			return
		}
	}
	t.Errorf("no error containing %q; got %v", fragment, errs)
}

func TestSemaTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class M { static void main() { int x = true; } }`, "cannot initialize"},
		{`class M { static void main() { bool b = 3; } }`, "cannot initialize"},
		{`class M { static void main() { if (1) { } } }`, "condition must be bool"},
		{`class M { static void main() { undefined(); } }`, "undefined method"},
		{`class M { static void main() { int y = nope; } }`, "undefined name"},
		{`class M { static int f() { } static void main() { } }`, "missing return"},
		{`class M { static void main() { return 5; } }`, "cannot return a value"},
		{`class M { static int f() { return; } static void main() { } }`, "must return"},
		{`class A { } class M { static void main() { A a = new A(); int x = a + 1; } }`, "arithmetic requires int"},
		{`class M { static void main() { throw new Object(); } }`, "not a subclass of Throwable"},
		{`class M { static void main() { break; } }`, "break outside a loop"},
		{`class M { static void main() { int x; int x; } }`, "duplicate local"},
		{`class M { int f; int f; static void main() { } }`, "duplicate field"},
		{`class M { void f() { } int f() { return 1; } static void main() { } }`, "duplicate method"},
		{`class A extends B { } class B extends A { } class M { static void main() { } }`, "inheritance cycle"},
		{`class A extends Nope { } class M { static void main() { } }`, "unknown class"},
		{`class M { static void main() { this.go(); } void go() { } }`, "this cannot appear in a static context"},
		{`class A { private int p; } class M { static void main() { A a = new A(); printInt(a.p); } }`, "is private"},
		{`class M { static void main() { int[] a = new int[3]; a.length = 5; } }`, "cannot assign to array length"},
	}
	for _, c := range cases {
		wantError(t, c.src, c.want)
	}
}

func TestSemaResolution(t *testing.T) {
	ck := mustCheck(t, `
class Base {
    int shared;
    int get() { return shared; }
}
class Derived extends Base {
    int extra;
    int get() { return shared + extra; }
    int sum() { return get(); }
}
class M { static void main() { printInt(new Derived().sum()); } }`)
	base := ck.ByName["Base"]
	derived := ck.ByName["Derived"]
	if derived.Super != base {
		t.Fatal("Derived.Super != Base")
	}
	// Field slot layout: shared at 0, extra after inherited slots.
	if base.Fields["shared"].Slot != 0 {
		t.Errorf("shared slot = %d", base.Fields["shared"].Slot)
	}
	if derived.Fields["extra"].Slot != 1 {
		t.Errorf("extra slot = %d", derived.Fields["extra"].Slot)
	}
	// Override shares the vtable index.
	if base.Methods["get"].VIndex != derived.Methods["get"].VIndex {
		t.Errorf("override vindex: %d vs %d",
			base.Methods["get"].VIndex, derived.Methods["get"].VIndex)
	}
	if derived.Methods["sum"].VIndex == derived.Methods["get"].VIndex {
		t.Error("distinct methods share a vtable index")
	}
}

func TestSemaImplicitObjectRoot(t *testing.T) {
	ck := mustCheck(t, `
class Standalone { int x; }
class M { static void main() { Object o = new Standalone(); } }`)
	sa := ck.ByName["Standalone"]
	if sa.Super == nil || sa.Super.Name != "Object" {
		t.Fatalf("Standalone super = %v, want Object", sa.Super)
	}
}

func TestSemaFinalizerDetection(t *testing.T) {
	ck := mustCheck(t, `
class Watched {
    void finalize() { }
}
class Child extends Watched { }
class Plain { }
class M { static void main() { } }`)
	if !ck.ByName["Watched"].Finalizable {
		t.Error("Watched should be finalizable")
	}
	if !ck.ByName["Child"].Finalizable {
		t.Error("Child inherits the finalizer")
	}
	if ck.ByName["Plain"].Finalizable {
		t.Error("Plain should not be finalizable")
	}
}

func TestSemaVisibilityRecorded(t *testing.T) {
	ck := mustCheck(t, `
class A {
    private int p;
    protected int q;
    public int r;
    int s;
    static void main() { }
}`)
	a := ck.ByName["A"]
	if a.Fields["p"].Vis.String() != "private" ||
		a.Fields["q"].Vis.String() != "protected" ||
		a.Fields["r"].Vis.String() != "public" ||
		a.Fields["s"].Vis.String() != "package" {
		t.Errorf("visibility: p=%v q=%v r=%v s=%v",
			a.Fields["p"].Vis, a.Fields["q"].Vis, a.Fields["r"].Vis, a.Fields["s"].Vis)
	}
}

func TestSemaCharIntRelaxation(t *testing.T) {
	mustCheck(t, `
class M {
    static void main() {
        char c = 'a';
        int i = c;
        c = i + 1;
        char[] buf = new char[4];
        buf[0] = 65;
        int x = buf[0] + c;
        printInt(x);
    }
}`)
}

func TestSemaWhileTrueReturns(t *testing.T) {
	// while(true) without break satisfies definite return.
	mustCheck(t, `
class M {
    static int spin(int n) {
        while (true) {
            if (n > 3) { return n; }
            n = n + 1;
        }
    }
    static void main() { printInt(spin(0)); }
}`)
	// while(true) WITH break falls through: must error.
	wantError(t, `
class M {
    static int spin(int n) {
        while (true) {
            break;
        }
    }
    static void main() { }
}`, "missing return")
}
