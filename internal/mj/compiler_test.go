package mj

import (
	"strings"
	"testing"

	"dragprof/internal/bytecode"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	p, _, err := CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestCompileVerifies(t *testing.T) {
	p := compileSrc(t, `
class Node {
    Node next;
    int v;
    Node(int x) { v = x; }
    void finalize() { v = 0; }
}
class M {
    static Node build(int n) {
        Node head = null;
        for (int i = 0; i < n; i = i + 1) {
            Node fresh = new Node(i);
            fresh.next = head;
            head = fresh;
        }
        return head;
    }
    static void main() {
        Node h = build(10);
        int sum = 0;
        while (h != null) {
            sum = sum + h.v;
            h = h.next;
        }
        try {
            synchronized (build(1)) {
                sum = sum / (sum - 55);
            }
        } catch (ArithmeticException e) {
            sum = -1;
        }
        printInt(sum);
    }
}`)
	if err := bytecode.Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if p.Main < 0 {
		t.Fatal("no main")
	}
	node := p.ClassByName("Node")
	if node == nil || !node.Finalizable {
		t.Error("Node should be finalizable")
	}
	m := p.MethodByName("Node", "finalize")
	if m == nil || m.Flags&bytecode.FlagFinalizer == 0 {
		t.Error("finalize not flagged")
	}
}

func TestCompileSiteTable(t *testing.T) {
	p := compileSrc(t, `
class M {
    static void main() {
        int[] a = new int[5];
        Object o = new Object();
        a[0] = 1;
    }
}`)
	// Sites: the two allocations in main, stdlib sites, and the VM's
	// runtime exception sites.
	var mainSites []bytecode.Site
	for _, s := range p.Sites {
		if s.Method >= 0 && p.Methods[s.Method].Name == "main" {
			mainSites = append(mainSites, s)
		}
	}
	if len(mainSites) != 2 {
		t.Fatalf("main sites = %d, want 2", len(mainSites))
	}
	if !strings.Contains(mainSites[0].Desc, "M.main") {
		t.Errorf("site desc = %q", mainSites[0].Desc)
	}
	// Runtime sites exist for the VM's exceptions.
	for _, name := range []string{"NullPointerException", "OutOfMemoryError", "ClassCastException"} {
		if _, ok := p.RuntimeClasses[name]; !ok {
			t.Errorf("runtime class %s missing", name)
		}
		if _, ok := p.RuntimeSites[name]; !ok {
			t.Errorf("runtime site %s missing", name)
		}
	}
}

func TestCompileShortCircuit(t *testing.T) {
	p := compileSrc(t, `
class M {
    static bool sideEffect() { printInt(1); return true; }
    static void main() {
        if (false && sideEffect()) { printInt(2); }
        if (true || sideEffect()) { printInt(3); }
    }
}`)
	// The disassembly of main must include conditional jumps for the
	// short-circuit forms.
	m := p.Methods[p.Main]
	text := bytecode.Disassemble(p, m)
	if !strings.Contains(text, "jumpfalse") || !strings.Contains(text, "jumptrue") {
		t.Errorf("short-circuit jumps missing:\n%s", text)
	}
}

func TestCompileStringLiteralsInterned(t *testing.T) {
	p := compileSrc(t, `
class M {
    static void main() {
        println("dup");
        println("dup");
        println("other");
    }
}`)
	count := map[string]int{}
	for _, s := range p.Strings {
		count[s]++
	}
	if count["dup"] != 1 {
		t.Errorf("string pool has %d copies of \"dup\"", count["dup"])
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	_, _, err := CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": `
class M {
    static void main() {
        int x = "not an int";
    }
}`})
	if err == nil || !strings.Contains(err.Error(), "cannot initialize") {
		t.Fatalf("err = %v", err)
	}

	_, _, err = CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": `
class M { void notMain() { } }`})
	if err == nil || !strings.Contains(err.Error(), "no static main") {
		t.Fatalf("err = %v", err)
	}

	_, _, err = CompileWithStdlib([]string{"t.mj"}, map[string]string{"t.mj": `
class A { static void main() { } }
class B { static void main() { } }`})
	if err == nil || !strings.Contains(err.Error(), "multiple static main") {
		t.Fatalf("err = %v", err)
	}
}

func TestDisassembleProgramStable(t *testing.T) {
	src := `
class M {
    static void main() {
        printInt(1 + 2);
    }
}`
	a := bytecode.DisassembleProgram(compileSrc(t, src))
	b := bytecode.DisassembleProgram(compileSrc(t, src))
	if a != b {
		t.Error("disassembly differs across identical compiles")
	}
	if !strings.Contains(a, "method main") {
		t.Errorf("missing main in disassembly")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	p := compileSrc(t, `class M { static void main() { printInt(1); } }`)
	m := p.Methods[p.Main]

	// Jump out of range.
	saved := m.Code
	m.Code = append(append([]bytecode.Instr(nil), saved...), bytecode.Instr{Op: bytecode.Jump, A: 9999})
	if err := bytecode.Verify(p); err == nil {
		t.Error("out-of-range jump not caught")
	}
	m.Code = saved

	// Bad local slot.
	m.Code = append([]bytecode.Instr{{Op: bytecode.StoreLocal, A: 99}}, saved...)
	if err := bytecode.Verify(p); err == nil {
		t.Error("bad local slot not caught")
	}
	m.Code = saved

	// Fall off the end.
	m.Code = saved[:len(saved)-1]
	if len(m.Code) > 0 && m.Code[len(m.Code)-1].Op != bytecode.Return {
		if err := bytecode.Verify(p); err == nil {
			t.Error("fall-off-end not caught")
		}
	}
	m.Code = saved
}
