package mj

import "dragprof/internal/bytecode"

// Stdlib is the MiniJava core runtime library: the implicit Object root,
// String (a char-array wrapper, as in the JDK the paper profiles, where
// java.util.String's character array shows up as a top drag site), and the
// Throwable hierarchy including the exception classes the VM raises itself.
//
// Programs compiled with CompileWithStdlib get these classes prepended.
// Collection classes (Vector, HashTable) live with the benchmarks, which
// profile and rewrite them the way the paper rewrites JDK code.
const Stdlib = `
class Object {
    Object() { }
}

class String {
    char[] chars;

    String() { }

    int length() {
        if (chars == null) { return 0; }
        return chars.length;
    }

    char charAt(int i) {
        return chars[i];
    }

    bool equals(String other) {
        return stringEquals(this, other);
    }

    int hashCode() {
        return hash(this);
    }
}

class Throwable {
    String message;

    Throwable(String m) { message = m; }

    String getMessage() { return message; }
}

class Exception extends Throwable {
    Exception(String m) { message = m; }
}

class RuntimeException extends Exception {
    RuntimeException(String m) { message = m; }
}

class NullPointerException extends RuntimeException {
    NullPointerException(String m) { message = m; }
}

class IndexOutOfBoundsException extends RuntimeException {
    IndexOutOfBoundsException(String m) { message = m; }
}

class ArithmeticException extends RuntimeException {
    ArithmeticException(String m) { message = m; }
}

class NegativeArraySizeException extends RuntimeException {
    NegativeArraySizeException(String m) { message = m; }
}

class ClassCastException extends RuntimeException {
    ClassCastException(String m) { message = m; }
}

class Error extends Throwable {
    Error(String m) { message = m; }
}

class OutOfMemoryError extends Error {
    OutOfMemoryError(String m) { message = m; }
}
`

// StdlibFileName names the synthetic stdlib source in diagnostics.
const StdlibFileName = "<stdlib>"

// CompileWithStdlib compiles the named sources with the core runtime
// library prepended. Sources are compiled in the given order after the
// stdlib, which fixes static-initializer ordering.
func CompileWithStdlib(names []string, sources map[string]string) (*bytecode.Program, *Checked, error) {
	allNames := append([]string{StdlibFileName}, names...)
	all := make(map[string]string, len(sources)+1)
	for k, v := range sources {
		all[k] = v
	}
	all[StdlibFileName] = Stdlib
	return CompileSources(allNames, all)
}
