package mj

import "testing"

func TestLexerBasics(t *testing.T) {
	toks, errs := LexAll("t.mj", `class Foo { int x = 42; }`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []TokenKind{TokClass, TokIdent, TokLBrace, TokInt, TokIdent,
		TokAssign, TokIntLit, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[6].Int != 42 {
		t.Errorf("int literal = %d, want 42", toks[6].Int)
	}
}

func TestLexerOperators(t *testing.T) {
	toks, errs := LexAll("t.mj", `== != <= >= < > = && || ! + - * / %`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []TokenKind{TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAssign,
		TokAndAnd, TokOrOr, TokBang, TokPlus, TokMinus, TokStar, TokSlash,
		TokPercent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexerStringsAndChars(t *testing.T) {
	toks, errs := LexAll("t.mj", `"hello\nworld" 'a' '\n' '\\' '\0'`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != TokStringLit || toks[0].Text != "hello\nworld" {
		t.Errorf("string = %q", toks[0].Text)
	}
	wantInts := []int64{'a', '\n', '\\', 0}
	for i, w := range wantInts {
		tok := toks[1+i]
		if tok.Kind != TokCharLit || tok.Int != w {
			t.Errorf("char %d = %v %d, want %d", i, tok.Kind, tok.Int, w)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, errs := LexAll("t.mj", `
// a line comment
class /* block
spanning lines */ Foo { }`)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[0].Kind != TokClass || toks[1].Text != "Foo" {
		t.Errorf("comments not skipped: %v %q", toks[0].Kind, toks[1].Text)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, _ := LexAll("t.mj", "class\n  Foo")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("class at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("Foo at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`'a`,
		`@`,
		`/* unterminated`,
		`& x`,
	}
	for _, src := range cases {
		_, errs := LexAll("t.mj", src)
		if len(errs) == 0 {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLexerKeywordVsIdent(t *testing.T) {
	toks, _ := LexAll("t.mj", "classy class boolean bool")
	want := []TokenKind{TokIdent, TokClass, TokBool, TokBool}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}
